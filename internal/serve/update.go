package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"distgnn/internal/comm"
	"distgnn/internal/graph"
	"distgnn/internal/obs"
)

// update.go is the serving side of the graph mutation plane: POST /update
// accepts a batch of edge inserts, applies it to this rank's snapshot
// chain, invalidates exactly the cached entries whose k-hop neighborhood
// the batch touched, and — in shard mode — fans the batch out to every
// peer rank over the comm.ReqRep plane so the replicated topology stays
// identical fleet-wide (the partition still decides which rank's feature
// plane owns each touched vertex; the topology, cheap next to features,
// is replicated just as it is for reads). The invalidation contract that
// keeps exact-mode serving bit-identical to a cold server on the
// post-mutation graph:
//
//   - inserting edge u→v changes only v's in-neighbor list, so the
//     logits of seed s change iff v lies within NumLayers-1 forward hops
//     of s on the post-mutation graph;
//   - the embedding cache therefore drops every vertex reachable from a
//     touched destination within NumLayers-1 hops along out-edges
//     (computed over a reverse-graph mutation layer maintained in
//     lockstep), and nothing else;
//   - the feature caches drop the touched destinations themselves (raw
//     input features are not changed by edge inserts — the drop keeps the
//     contract simple and auditable), and nothing else.
//
// A writer/publisher lock closes the stale-publish race: without it, a
// batch inferred on the pre-update snapshot could publish its rows to the
// embedding cache after the update's invalidation sweep, resurrecting
// stale logits. Publishers re-check the topology epoch under the read
// lock; the updater inserts and invalidates under the write lock.

// defaultCompactThreshold is the overlay size (in edges) past which an
// update triggers a background compaction when Config.CompactThreshold
// is zero.
const defaultCompactThreshold = 4096

// updateState is the per-server mutation plane: the forward mutation
// layer the engine serves from, the reverse layer the invalidation
// fan-out is computed over, and the update counters.
type updateState struct {
	// mu orders cache invalidation against embedding-cache publication:
	// applyUpdate holds it exclusively across insert+invalidate, and
	// inferAndCache publishes under the read side after re-checking the
	// epoch it started from.
	mu   sync.RWMutex
	mut  *graph.Mutable // forward graph: the serving topology
	rev  *graph.Mutable // reverse graph: out-edge fan-out for invalidation
	hops int            // invalidation depth, NumLayers-1

	updates atomic.Int64
	edges   atomic.Int64
	invEmb  atomic.Int64
	invFeat atomic.Int64
}

// newUpdateState builds the mutation plane over the engine's dataset and
// points the engine's per-request topology at it.
func newUpdateState(eng *Engine, cfg Config) *updateState {
	threshold := cfg.CompactThreshold
	if threshold == 0 {
		threshold = defaultCompactThreshold
	}
	u := &updateState{
		mut:  graph.NewMutable(eng.ds.G, threshold),
		rev:  graph.NewMutable(eng.ds.G.Reverse(), threshold),
		hops: eng.spec.NumLayers - 1,
	}
	eng.mut = u.mut
	return u
}

// UpdateRequest is the POST /update payload: a batch of directed edges,
// each a [src, dst] pair, applied atomically (readers see the pre-batch
// or post-batch graph, never a prefix).
type UpdateRequest struct {
	Edges [][2]int32 `json:"edges"`
}

// UpdateRankAck is one rank's application receipt inside UpdateResponse.
type UpdateRankAck struct {
	Rank                  int    `json:"rank"`
	Epoch                 uint64 `json:"epoch"`
	OverlayEdges          int    `json:"overlay_edges"`
	InvalidatedEmbeddings int    `json:"invalidated_embeddings"`
	InvalidatedFeatures   int    `json:"invalidated_features"`
}

// UpdateResponse is the POST /update reply: the entry rank's view plus
// one ack per rank that applied the batch (just the entry rank itself in
// single-process mode).
type UpdateResponse struct {
	Applied               int             `json:"applied"`
	Epoch                 uint64          `json:"epoch"`
	OverlayEdges          int             `json:"overlay_edges"`
	Compactions           int64           `json:"compactions"`
	InvalidatedEmbeddings int             `json:"invalidated_embeddings"`
	InvalidatedFeatures   int             `json:"invalidated_features"`
	Ranks                 []UpdateRankAck `json:"ranks"`
}

// StreamStats is the /stats mutation-plane block, present when updates
// are enabled.
type StreamStats struct {
	Epoch                 uint64 `json:"epoch"`
	BaseEdges             int    `json:"base_edges"`
	OverlayEdges          int    `json:"overlay_edges"`
	OverlayVertices       int    `json:"overlay_vertices"`
	Compactions           int64  `json:"compactions"`
	Updates               int64  `json:"updates"`
	EdgesApplied          int64  `json:"edges_applied"`
	InvalidatedEmbeddings int64  `json:"invalidated_embeddings"`
	InvalidatedFeatures   int64  `json:"invalidated_features"`
}

// streamStats snapshots the mutation-plane counters for /stats.
func (u *updateState) streamStats() StreamStats {
	s := u.mut.Snapshot()
	return StreamStats{
		Epoch:                 s.Epoch(),
		BaseEdges:             s.Base().NumEdges,
		OverlayEdges:          s.OverlayEdges(),
		OverlayVertices:       s.OverlayVertices(),
		Compactions:           u.mut.Compactions(),
		Updates:               u.updates.Load(),
		EdgesApplied:          u.edges.Load(),
		InvalidatedEmbeddings: u.invEmb.Load(),
		InvalidatedFeatures:   u.invFeat.Load(),
	}
}

// applyUpdate applies one edge batch to this rank: forward and reverse
// inserts, then the targeted cache invalidation, all under the exclusive
// side of the publisher lock so no stale embedding row can be published
// after the sweep.
func (s *Server) applyUpdate(edges []graph.Edge) (UpdateRankAck, error) {
	u := s.upd
	u.mu.Lock()
	defer u.mu.Unlock()
	snap, err := u.mut.Insert(edges)
	if err != nil {
		return UpdateRankAck{}, err
	}
	revEdges := make([]graph.Edge, len(edges))
	for i, e := range edges {
		revEdges[i] = graph.Edge{Src: e.Dst, Dst: e.Src}
	}
	revSnap, err := u.rev.Insert(revEdges)
	if err != nil {
		// Unreachable: the forward insert validated the same endpoints.
		return UpdateRankAck{}, fmt.Errorf("serve: reverse insert: %w", err)
	}

	touched := uniqueDsts(edges)
	affected := affectedVertices(revSnap, touched, u.hops)
	invEmb := 0
	for _, v := range affected {
		if s.emb.Remove(v) {
			invEmb++
		}
	}
	eng := s.engine.Load()
	invFeat := eng.invalidateFeatures(touched)
	if s.shard != nil {
		invFeat += s.shard.fs.InvalidateRemote(touched)
	}

	u.updates.Add(1)
	u.edges.Add(int64(len(edges)))
	u.invEmb.Add(int64(invEmb))
	u.invFeat.Add(int64(invFeat))

	rank := -1
	if s.shard != nil {
		rank = s.shard.fs.Rank()
	}
	return UpdateRankAck{
		Rank:                  rank,
		Epoch:                 snap.Epoch(),
		OverlayEdges:          snap.OverlayEdges(),
		InvalidatedEmbeddings: invEmb,
		InvalidatedFeatures:   invFeat,
	}, nil
}

// uniqueDsts returns the distinct destination vertices of a batch — the
// vertices whose in-neighbor lists the batch changed.
func uniqueDsts(edges []graph.Edge) []int32 {
	seen := make(map[int32]bool, len(edges))
	var out []int32
	for _, e := range edges {
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

// affectedVertices returns every vertex whose exact-mode output depends
// on a touched in-neighbor list: the touched vertices themselves plus
// everything reachable from them within hops steps along forward
// out-edges — which are exactly the reverse graph's in-edges, so the BFS
// runs over the reverse snapshot (post-mutation, so fan-out through edges
// inserted in the same batch is covered).
func affectedVertices(rev *graph.Snapshot, touched []int32, hops int) []int32 {
	seen := make(map[int32]bool, len(touched))
	out := make([]int32, 0, len(touched))
	for _, v := range touched {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	frontier := out
	for h := 0; h < hops; h++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range rev.InNeighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					out = append(out, w)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return out
}

// handleUpdate is POST /update: decode, validate, apply locally, fan out
// to the fleet (shard mode), reply with per-rank receipts. Gated by
// Config.EnableUpdates.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.upd == nil {
		httpError(w, http.StatusForbidden, fmt.Errorf("updates disabled (start with -updates)"))
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST /update"))
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad update payload: %v", err))
		return
	}
	if len(req.Edges) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("update batch is empty"))
		return
	}
	n := s.engine.Load().topo().NumV()
	edges := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("edge %d (%d→%d) out of range [0,%d)", i, e[0], e[1], n))
			return
		}
		edges[i] = graph.Edge{Src: e[0], Dst: e[1]}
	}
	tc := s.traceCtx(r)
	local, err := s.applyUpdate(edges)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	acks := []UpdateRankAck{local}
	if s.shard != nil {
		peerAcks, err := s.fanOutUpdate(edges, tc)
		if err != nil {
			// Local state advanced but a peer did not confirm — surface it
			// loudly; the caller retries (inserts are idempotent only at the
			// multigraph level, so operators treat 502 as "fleet diverged,
			// re-drive or restart").
			httpError(w, http.StatusBadGateway, err)
			return
		}
		acks = append(acks, peerAcks...)
		sort.Slice(acks, func(i, j int) bool { return acks[i].Rank < acks[j].Rank })
	}
	if id := tc.ID(); id != 0 {
		w.Header().Set(obs.TraceHeader, obs.FormatTraceID(id))
	}
	writeJSON(w, UpdateResponse{
		Applied:               len(edges),
		Epoch:                 local.Epoch,
		OverlayEdges:          local.OverlayEdges,
		Compactions:           s.upd.mut.Compactions(),
		InvalidatedEmbeddings: local.InvalidatedEmbeddings,
		InvalidatedFeatures:   local.InvalidatedFeatures,
		Ranks:                 acks,
	})
	s.finishRequest(tc, "update", -1, http.StatusOK)
}

// fanOutUpdate broadcasts the batch to every peer rank over the shared
// ReqRep plane and collects their receipts. The topology is replicated, so
// every rank must apply every edge; the frame rides the same endpoint the
// halo fetches use, behind the update opcode.
func (s *Server) fanOutUpdate(edges []graph.Edge, tc *obs.TraceCtx) ([]UpdateRankAck, error) {
	fs := s.shard.fs
	payload := make([]int32, 0, 1+2*len(edges))
	payload = append(payload, int32(len(edges)))
	for _, e := range edges {
		payload = append(payload, e.Src, e.Dst)
	}
	var acks []UpdateRankAck
	for p := 0; p < fs.Shards(); p++ {
		if p == fs.Rank() {
			continue
		}
		stop := tc.StartSpan(fmt.Sprintf("update_rank%d", p))
		rep, err := fs.CallUpdate(p, tc.ID(), payload)
		stop()
		if err != nil {
			return nil, fmt.Errorf("update fan-out to rank %d: %w", p, err)
		}
		ack, err := decodeUpdateAck(rep)
		if err != nil {
			return nil, fmt.Errorf("update ack from rank %d: %w", p, err)
		}
		acks = append(acks, ack)
	}
	return acks, nil
}

// handleUpdateFrame is the ReqRep receiver for fan-out frames from the
// entry rank: decode the batch, apply it locally, return this rank's
// receipt. Registered on the featstore endpoint by NewShard.
func (s *Server) handleUpdateFrame(from int, trace uint64, req []float32) ([]float32, error) {
	if s.upd == nil {
		return nil, fmt.Errorf("serve: rank received update frame but updates are disabled")
	}
	ids := comm.F32ToInt32s(req)
	if len(ids) < 1 {
		return nil, fmt.Errorf("serve: empty update frame from rank %d", from)
	}
	n := int(ids[0])
	if n < 1 || len(ids) != 1+2*n {
		return nil, fmt.Errorf("serve: malformed update frame from rank %d: %d edges, %d words",
			from, n, len(ids))
	}
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: ids[1+2*i], Dst: ids[2+2*i]}
	}
	ack, err := s.applyUpdate(edges)
	if err != nil {
		return nil, err
	}
	return comm.Int32sToF32(encodeUpdateAck(ack)), nil
}

// encodeUpdateAck packs a receipt into the int32 wire words decodeUpdateAck
// reads: rank, epoch (lo/hi), overlay edges, invalidated embeddings,
// invalidated features.
func encodeUpdateAck(a UpdateRankAck) []int32 {
	return []int32{
		int32(a.Rank),
		int32(uint32(a.Epoch)), int32(uint32(a.Epoch >> 32)),
		int32(a.OverlayEdges),
		int32(a.InvalidatedEmbeddings),
		int32(a.InvalidatedFeatures),
	}
}

func decodeUpdateAck(rep []float32) (UpdateRankAck, error) {
	ids := comm.F32ToInt32s(rep)
	if len(ids) != 6 {
		return UpdateRankAck{}, fmt.Errorf("ack has %d words, want 6", len(ids))
	}
	return UpdateRankAck{
		Rank:                  int(ids[0]),
		Epoch:                 uint64(uint32(ids[1])) | uint64(uint32(ids[2]))<<32,
		OverlayEdges:          int(ids[3]),
		InvalidatedEmbeddings: int(ids[4]),
		InvalidatedFeatures:   int(ids[5]),
	}, nil
}

// registerStreamMetrics exposes the mutation-plane counters on the obs
// registry: overlay size and epoch as gauges, compactions / updates /
// invalidations as counters.
func (s *Server) registerStreamMetrics(reg *obs.Registry) {
	u := s.upd
	gaugeFn(reg, "distgnn_stream_overlay_edges",
		"Edges in the mutation overlay (drops to 0 at compaction).",
		func() int64 { return int64(u.mut.Snapshot().OverlayEdges()) })
	gaugeFn(reg, "distgnn_stream_epoch",
		"Current graph snapshot epoch.",
		func() int64 { return int64(u.mut.Snapshot().Epoch()) })
	counterFn(reg, "distgnn_stream_compactions_total",
		"Overlay compactions folded into the base CSR.", u.mut.Compactions)
	counterFn(reg, "distgnn_stream_updates_total",
		"Update batches applied on this rank.", u.updates.Load)
	counterFn(reg, "distgnn_stream_edges_applied_total",
		"Edges inserted on this rank.", u.edges.Load)
	counterFn(reg, obs.Label("distgnn_stream_invalidated_total", "cache", "embedding"),
		"Cache entries invalidated by updates, by cache.", u.invEmb.Load)
	counterFn(reg, obs.Label("distgnn_stream_invalidated_total", "cache", "feature"),
		"Cache entries invalidated by updates, by cache.", u.invFeat.Load)
}
