package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"

	"distgnn/internal/graph"
)

// update_test.go holds the mutation-plane satellites: the k-hop
// invalidation property test (the sweep kills exactly the affected
// entries — no over-, no under-invalidation), the golden-schema pins for
// the /update payloads, and the endpoint/constructor gating.

// updateFixture builds a single-process updates-enabled server with both
// caches big enough that nothing is ever evicted, so cache contents are
// exactly what the warm/invalidate traffic dictates.
func updateFixture(t *testing.T, layers int) *Server {
	t.Helper()
	ds, _, ckpt := trainedSageCheckpoint(t, 16, layers)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: layers,
		FeatureCacheBytes: 1 << 24, EmbedCacheBytes: 1 << 24,
		EnableUpdates: true, CompactThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// warmAllVertices runs every vertex through the inference path so the
// embedding cache holds one row per vertex and the feature cache holds
// every gathered row.
func warmAllVertices(t *testing.T, srv *Server, n int) {
	t.Helper()
	for lo := 0; lo < n; lo += 64 {
		hi := lo + 64
		if hi > n {
			hi = n
		}
		batch := make([]int32, 0, hi-lo)
		for v := lo; v < hi; v++ {
			batch = append(batch, int32(v))
		}
		if _, err := srv.inferAndCache(batch, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// expectedAffected is the independent model of the invalidation contract:
// BFS from the batch's destination vertices along forward out-edges of the
// post-mutation graph, to depth hops. Built from a plain edge list, no
// shared code with the server's reverse-snapshot BFS.
func expectedAffected(edges []graph.Edge, batch []graph.Edge, hops int) map[int32]bool {
	out := map[int32][]int32{}
	for _, e := range edges {
		out[e.Src] = append(out[e.Src], e.Dst)
	}
	for _, e := range batch {
		out[e.Src] = append(out[e.Src], e.Dst)
	}
	affected := map[int32]bool{}
	var frontier []int32
	for _, e := range batch {
		if !affected[e.Dst] {
			affected[e.Dst] = true
			frontier = append(frontier, e.Dst)
		}
	}
	for h := 0; h < hops; h++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range out[v] {
				if !affected[w] {
					affected[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return affected
}

// TestUpdateInvalidationProperty pins the invalidation contract across
// random update batches at 2 and 3 layers: after each batch, every
// affected vertex's embedding row is gone, every unaffected previously
// cached row survives, the feature cache drops exactly the touched
// destinations, and the /stats counters agree with the independent model.
func TestUpdateInvalidationProperty(t *testing.T) {
	for _, layers := range []int{2, 3} {
		srv := updateFixture(t, layers)
		ds := srv.engine.Load().ds
		n := ds.G.NumVertices
		hops := layers - 1
		edges := ds.G.Edges() // running post-mutation edge list for the model
		rng := rand.New(rand.NewSource(int64(97 + layers)))

		var wantInvEmb, wantInvFeat int64
		for round := 0; round < 4; round++ {
			warmAllVertices(t, srv, n)
			eng := srv.engine.Load()

			// Deliberately chain two inserts (a→b then b→c) so the fan-out
			// must traverse an edge added in the same batch.
			a, b2, c := int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))
			batch := []graph.Edge{{Src: a, Dst: b2}, {Src: b2, Dst: c}}
			for i := 0; i < 6; i++ {
				batch = append(batch, graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))})
			}

			// Which feature rows are resident right now (warm pass gathers
			// everything, but record rather than assume).
			featBefore := map[int32]bool{}
			for v := 0; v < n; v++ {
				if _, ok := eng.feat.Get(int32(v)); ok {
					featBefore[int32(v)] = true
				}
			}
			for v := 0; v < n; v++ {
				if _, ok := srv.emb.Get(int32(v)); !ok {
					t.Fatalf("layers=%d round %d: vertex %d not warm before update", layers, round, v)
				}
			}

			resp := postUpdate(t, srv, batch)
			affected := expectedAffected(edges, batch, hops)
			touched := map[int32]bool{}
			for _, e := range batch {
				touched[e.Dst] = true
			}
			for _, e := range batch {
				edges = append(edges, e)
			}

			// No under-invalidation: every affected embedding row is gone.
			// No over-invalidation: everything else survived.
			for v := 0; v < n; v++ {
				_, ok := srv.emb.Get(int32(v))
				if affected[int32(v)] && ok {
					t.Fatalf("layers=%d round %d: affected vertex %d still cached (under-invalidation)",
						layers, round, v)
				}
				if !affected[int32(v)] && !ok {
					t.Fatalf("layers=%d round %d: unaffected vertex %d dropped (over-invalidation)",
						layers, round, v)
				}
			}
			// Feature cache: exactly the touched destinations drop.
			for v := range featBefore {
				_, ok := eng.feat.Get(v)
				if touched[v] && ok {
					t.Fatalf("layers=%d round %d: touched feature row %d still cached", layers, round, v)
				}
				if !touched[v] && !ok {
					t.Fatalf("layers=%d round %d: untouched feature row %d dropped", layers, round, v)
				}
			}

			// The response and /stats counters match the independent model.
			if resp.InvalidatedEmbeddings != len(affected) {
				t.Fatalf("layers=%d round %d: response says %d embeddings invalidated, model says %d",
					layers, round, resp.InvalidatedEmbeddings, len(affected))
			}
			nTouchedCached := 0
			for v := range touched {
				if featBefore[v] {
					nTouchedCached++
				}
			}
			if resp.InvalidatedFeatures != nTouchedCached {
				t.Fatalf("layers=%d round %d: response says %d features invalidated, model says %d",
					layers, round, resp.InvalidatedFeatures, nTouchedCached)
			}
			wantInvEmb += int64(len(affected))
			wantInvFeat += int64(nTouchedCached)
			str := srv.StatsSnapshot().Stream
			if str.InvalidatedEmbeddings != wantInvEmb || str.InvalidatedFeatures != wantInvFeat {
				t.Fatalf("layers=%d round %d: stream counters (%d,%d), want (%d,%d)",
					layers, round, str.InvalidatedEmbeddings, str.InvalidatedFeatures,
					wantInvEmb, wantInvFeat)
			}
			if str.Updates != int64(round+1) || str.EdgesApplied != int64((round+1)*len(batch)) {
				t.Fatalf("layers=%d round %d: stream update counters %+v", layers, round, str)
			}
		}
	}
}

// TestUpdateSchemaGolden pins the /update wire contract: the request
// shape, the response's key paths, and the per-rank ack schema.
func TestUpdateSchemaGolden(t *testing.T) {
	body, err := json.Marshal(UpdateRequest{Edges: [][2]int32{{1, 2}, {3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(body), `{"edges":[[1,2],[3,4]]}`; got != want {
		t.Fatalf("request schema drifted: %s, want %s", got, want)
	}

	srv := updateFixture(t, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, ct := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || ct != "application/json" {
		t.Fatalf("/update status %d Content-Type %q: %s", resp.StatusCode, ct, raw)
	}
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{
		"applied", "compactions", "epoch",
		"invalidated_embeddings", "invalidated_features", "overlay_edges", "ranks",
	}
	if got := jsonKeyPaths(t, obj); !reflect.DeepEqual(got, wantKeys) {
		t.Fatalf("/update response schema drifted:\n got %v\nwant %v", got, wantKeys)
	}
	ranks, ok := obj["ranks"].([]any)
	if !ok || len(ranks) != 1 {
		t.Fatalf("single-process response must carry exactly one rank ack: %s", raw)
	}
	ack, ok := ranks[0].(map[string]any)
	if !ok {
		t.Fatalf("rank ack is not an object: %s", raw)
	}
	var ackKeys []string
	for k := range ack {
		ackKeys = append(ackKeys, k)
	}
	sort.Strings(ackKeys)
	wantAck := []string{
		"epoch", "invalidated_embeddings", "invalidated_features", "overlay_edges", "rank",
	}
	if !reflect.DeepEqual(ackKeys, wantAck) {
		t.Fatalf("rank ack schema drifted:\n got %v\nwant %v", ackKeys, wantAck)
	}
}

// TestUpdateGating pins the endpoint's refusal paths and the constructor's
// exact-mode-only constraint.
func TestUpdateGating(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)

	// Sampled serving cannot honor the bit-identity contract: rejected at
	// construction, not silently degraded.
	if _, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		EnableUpdates: true, Fanouts: []int{5, 5},
	}); err == nil {
		t.Fatal("New accepted EnableUpdates together with sampled fanouts")
	}

	// Updates off: /update is forbidden.
	off, err := New(ds, bytes.NewReader(ckpt), Config{Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := http.Post(tsOff.URL+"/update", "application/json",
		bytes.NewReader([]byte(`{"edges":[[0,1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled /update: status %d, want 403", resp.StatusCode)
	}

	srv := updateFixture(t, 2)
	n := srv.engine.Load().ds.G.NumVertices
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, method, body string
		code               int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"bad-json", http.MethodPost, `{"edges":`, http.StatusBadRequest},
		{"empty", http.MethodPost, `{"edges":[]}`, http.StatusBadRequest},
		{"negative", http.MethodPost, `{"edges":[[-1,0]]}`, http.StatusBadRequest},
		{"out-of-range", http.MethodPost, fmt.Sprintf(`{"edges":[[0,%d]]}`, n), http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+"/update", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
		// A refused request must not advance the topology epoch.
		if got := srv.upd.mut.Snapshot().Epoch(); got != 0 {
			t.Fatalf("%s: refused request advanced epoch to %d", tc.name, got)
		}
	}
}

// TestUpdateConcurrentInference races the serving path against the
// mutation path: query workers hammer inferAndCache over random batches
// while an updater drives insert batches through POST /update
// (invalidation sweeps included) and finishes with a compaction. Run
// under -race this exercises the update lock ordering; the functional pin
// is the stale-publish guard — once the traffic stops, every vertex's
// served logits, cache hits included, must be bit-identical to a cold
// server on the rebuilt final graph. An inference that straddled an epoch
// bump and still published its rows would leave a stale cache entry and
// fail the sweep.
func TestUpdateConcurrentInference(t *testing.T) {
	ds, _, ckpt := trainedSageCheckpoint(t, 16, 2)
	srv, err := New(ds, bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
		FeatureCacheBytes: 1 << 24, EmbedCacheBytes: 1 << 24,
		EnableUpdates: true, CompactThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	n := int32(ds.G.NumVertices)

	rng := rand.New(rand.NewSource(71))
	batches := make([][]graph.Edge, 8)
	for i := range batches {
		for j := 0; j < 6; j++ {
			batches[i] = append(batches[i], graph.Edge{Src: rng.Int31n(n), Dst: rng.Int31n(n)})
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				batch := make([]int32, 8)
				for i := range batch {
					batch[i] = r.Int31n(n)
				}
				if _, err := srv.inferAndCache(batch, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(100 + w))
	}
	var inserted []graph.Edge
	for _, b := range batches {
		postUpdate(t, srv, b)
		inserted = append(inserted, b...)
	}
	srv.upd.mut.Compact()
	close(done)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	cold, err := New(mutatedDataset(t, ds, inserted), bytes.NewReader(ckpt), Config{
		Arch: ArchGraphSAGE, Hidden: 16, NumLayers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cold.Close)
	for lo := int32(0); lo < n; lo += 64 {
		hi := lo + 64
		if hi > n {
			hi = n
		}
		probe := make([]int32, 0, hi-lo)
		for v := lo; v < hi; v++ {
			probe = append(probe, v)
		}
		got, err := srv.inferAndCache(probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.Engine().Infer(probe)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range probe {
			bitsEqual(t, got.Row(i), want.Row(i),
				fmt.Sprintf("vertex %d after racing updates vs cold rebuild", v))
		}
	}
}
