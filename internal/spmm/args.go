package spmm

import (
	"fmt"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// Args bundles the operands of one aggregation-primitive invocation,
// mirroring the Require lines of Alg. 1: the adjacency in CSR form, the
// vertex feature matrix f_V (|V|×d), the optional edge feature matrix f_E
// (|E|×d, nil when ⊗ is unary on vertex features), the output f_O (|V|×d),
// and the (⊗, ⊕) operator pair.
type Args struct {
	G  *graph.CSR
	FV *tensor.Matrix // fp32 vertex features, |V|×d; may be nil for OpCopyRHS
	// FVB is the bf16 form of the vertex-feature operand — the SrcBF16 rung
	// of the source-precision axis. Exactly one of FV/FVB may be set for ops
	// that read vertex features; kernels decode FVB rows on load and
	// accumulate in float32.
	FVB *tensor.BF16Matrix
	FE  *tensor.Matrix // edge features, |E|×d; may be nil for OpCopyLHS
	FO  *tensor.Matrix // output, |V|×d
	Op  Op
	Red Reduce
}

// SrcPrec reports which storage format the vertex-feature operand uses.
func (a *Args) SrcPrec() SrcPrecision {
	if a.FVB != nil {
		return SrcBF16
	}
	return SrcFP32
}

// Validate checks operand shapes against the graph and operator form.
func (a *Args) Validate() error {
	if a.G == nil || a.FO == nil {
		return fmt.Errorf("spmm: graph and output are required")
	}
	d := a.FO.Cols
	if a.FO.Rows != a.G.NumVertices {
		return fmt.Errorf("spmm: output rows %d != vertices %d", a.FO.Rows, a.G.NumVertices)
	}
	needsFV := a.Op != OpCopyRHS
	needsFE := a.Op != OpCopyLHS
	if a.FV != nil && a.FVB != nil {
		return fmt.Errorf("spmm: FV and FVB are mutually exclusive (one source precision per call)")
	}
	if needsFV {
		switch {
		case a.FV == nil && a.FVB == nil:
			return fmt.Errorf("spmm: op %v requires vertex features", a.Op)
		case a.FV != nil && (a.FV.Rows != a.G.NumVertices || a.FV.Cols != d):
			return fmt.Errorf("spmm: vertex features %dx%d, want %dx%d",
				a.FV.Rows, a.FV.Cols, a.G.NumVertices, d)
		case a.FVB != nil && (a.FVB.Rows != a.G.NumVertices || a.FVB.Cols != d):
			return fmt.Errorf("spmm: bf16 vertex features %dx%d, want %dx%d",
				a.FVB.Rows, a.FVB.Cols, a.G.NumVertices, d)
		}
	} else if a.FVB != nil {
		return fmt.Errorf("spmm: op %v does not read vertex features; FVB must be nil", a.Op)
	}
	if needsFE {
		if a.FE == nil {
			return fmt.Errorf("spmm: op %v requires edge features", a.Op)
		}
		if a.FE.Rows != a.G.NumEdges || a.FE.Cols != d {
			return fmt.Errorf("spmm: edge features %dx%d, want %dx%d",
				a.FE.Rows, a.FE.Cols, a.G.NumEdges, d)
		}
	}
	if a.FV != nil && a.FO != nil && a.FV == a.FO {
		return fmt.Errorf("spmm: output must not alias vertex features")
	}
	return nil
}

// initOutput fills f_O with the reducer's identity so reduction starts from
// a neutral element (DGL zero-initializes for sum; max/min need ∓inf).
func (a *Args) initOutput() {
	a.FO.Fill(a.Red.Identity())
}

// finalizeEmpty rewrites rows of f_O that received no edges from the
// reducer identity back to 0, matching DGL's convention that isolated
// vertices aggregate to zero for max/min too.
func (a *Args) finalizeEmpty() {
	if a.Red == ReduceSum {
		return
	}
	id := a.Red.Identity()
	for v := 0; v < a.G.NumVertices; v++ {
		if a.G.InDegree(v) == 0 {
			row := a.FO.Row(v)
			for j := range row {
				if row[j] == id {
					row[j] = 0
				}
			}
		}
	}
}
