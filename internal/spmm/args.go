package spmm

import (
	"fmt"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// Args bundles the operands of one aggregation-primitive invocation,
// mirroring the Require lines of Alg. 1: the adjacency in CSR form, the
// vertex feature matrix f_V (|V|×d), the optional edge feature matrix f_E
// (|E|×d, nil when ⊗ is unary on vertex features), the output f_O (|V|×d),
// and the (⊗, ⊕) operator pair.
type Args struct {
	G   *graph.CSR
	FV  *tensor.Matrix // vertex features, |V|×d; may be nil for OpCopyRHS
	FE  *tensor.Matrix // edge features, |E|×d; may be nil for OpCopyLHS
	FO  *tensor.Matrix // output, |V|×d
	Op  Op
	Red Reduce
}

// Validate checks operand shapes against the graph and operator form.
func (a *Args) Validate() error {
	if a.G == nil || a.FO == nil {
		return fmt.Errorf("spmm: graph and output are required")
	}
	d := a.FO.Cols
	if a.FO.Rows != a.G.NumVertices {
		return fmt.Errorf("spmm: output rows %d != vertices %d", a.FO.Rows, a.G.NumVertices)
	}
	needsFV := a.Op != OpCopyRHS
	needsFE := a.Op != OpCopyLHS
	if needsFV {
		if a.FV == nil {
			return fmt.Errorf("spmm: op %v requires vertex features", a.Op)
		}
		if a.FV.Rows != a.G.NumVertices || a.FV.Cols != d {
			return fmt.Errorf("spmm: vertex features %dx%d, want %dx%d",
				a.FV.Rows, a.FV.Cols, a.G.NumVertices, d)
		}
	}
	if needsFE {
		if a.FE == nil {
			return fmt.Errorf("spmm: op %v requires edge features", a.Op)
		}
		if a.FE.Rows != a.G.NumEdges || a.FE.Cols != d {
			return fmt.Errorf("spmm: edge features %dx%d, want %dx%d",
				a.FE.Rows, a.FE.Cols, a.G.NumEdges, d)
		}
	}
	if a.FV != nil && a.FO != nil && a.FV == a.FO {
		return fmt.Errorf("spmm: output must not alias vertex features")
	}
	return nil
}

// initOutput fills f_O with the reducer's identity so reduction starts from
// a neutral element (DGL zero-initializes for sum; max/min need ∓inf).
func (a *Args) initOutput() {
	a.FO.Fill(a.Red.Identity())
}

// finalizeEmpty rewrites rows of f_O that received no edges from the
// reducer identity back to 0, matching DGL's convention that isolated
// vertices aggregate to zero for max/min too.
func (a *Args) finalizeEmpty() {
	if a.Red == ReduceSum {
		return
	}
	id := a.Red.Identity()
	for v := 0; v < a.G.NumVertices; v++ {
		if a.G.InDegree(v) == 0 {
			row := a.FO.Row(v)
			for j := range row {
				if row[j] == id {
					row[j] = 0
				}
			}
		}
	}
}
