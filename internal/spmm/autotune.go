package spmm

import (
	"log"
	"sync/atomic"
	"time"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// AutoTune empirically picks the fastest Options for aggregations over g
// with feature width d, replacing the hard-coded DefaultOptions heuristic.
// It benchmarks the full candidate lattice — cache-block counts × schedule
// × loop reordering, the axes of the paper's Fig. 4 ladder — on a sample
// copylhs/sum aggregation (the GNN hot path) and returns the winner. Each
// candidate is measured several times and scored by its minimum (the
// standard defense against one-shot timing noise: scheduler preemptions and
// cache-state flukes only ever add time), and graphs below a trivial work
// floor skip the sweep entirely — at that size every configuration finishes
// in noise-level time and the blocked-CSR builds would cost more than they
// could ever recover.
//
// The winning configuration depends on the machine, the worker-pool size
// and the degree distribution, which is exactly why the paper sweeps these
// knobs per dataset rather than fixing them — and why AutoTuneCached
// persists the result per (dataset, width, workers, machine) instead of
// re-sweeping every run.
func AutoTune(g *graph.CSR, d int) Options {
	if d <= 0 {
		d = 32
	}
	if int64(g.NumEdges)*int64(d) < trivialTuneWork {
		log.Printf("spmm: autotune skipped: graph below trivial-size floor (%d edges × %d cols < %d element updates); using defaults",
			g.NumEdges, d, trivialTuneWork)
		return Options{NumBlocks: 1, Schedule: ScheduleDynamic, Reordered: true, ChunkSize: 64}
	}
	sweepCount.Add(1)

	// Cap the sample width: relative kernel ranking is stable past the
	// register-tile width, and tuning cost scales linearly with d.
	sampleD := d
	if sampleD > 64 {
		sampleD = 64
	}

	args := &Args{
		G:  g,
		FV: tensor.New(g.NumVertices, sampleD),
		FO: tensor.New(g.NumVertices, sampleD),
		Op: OpCopyLHS, Red: ReduceSum,
	}
	// Deterministic pseudorandom features; values are irrelevant to timing
	// but non-zero so no kernel can short-circuit.
	seed := uint32(2463534242)
	for i := range args.FV.Data {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		args.FV.Data[i] = float32(seed%1024)/512 - 1
	}

	reps := tuneReps(g, sampleD)
	best := Options{NumBlocks: 1, Schedule: ScheduleDynamic, Reordered: true, ChunkSize: 64}
	bestTime := time.Duration(1<<63 - 1)
	for _, nB := range candidateBlocks(g) {
		// One plan per block count: the blocked CSR build (the expensive
		// part) is shared by all schedule/reorder variants.
		plan := NewPlan(g, Options{NumBlocks: nB, Schedule: ScheduleDynamic, Reordered: true})
		for _, sched := range []Schedule{ScheduleDynamic, ScheduleStatic} {
			for _, reordered := range []bool{true, false} {
				plan.Opt.Schedule = sched
				plan.Opt.Reordered = reordered
				if err := plan.Run(args); err != nil {
					return best // shapes are ours; should be unreachable
				}
				// Min-of-N: repeat the timed measurement and keep the
				// fastest — the least-disturbed observation of this
				// candidate's true cost.
				candidate := time.Duration(1<<63 - 1)
				for m := 0; m < tuneMinOf; m++ {
					start := time.Now()
					for r := 0; r < reps; r++ {
						if err := plan.Run(args); err != nil {
							return best
						}
					}
					if elapsed := time.Since(start); elapsed < candidate {
						candidate = elapsed
					}
				}
				if candidate < bestTime {
					bestTime = candidate
					best = plan.Opt
				}
			}
		}
	}
	return best
}

// tuneMinOf is the number of repeated timings per candidate; the minimum is
// scored.
const tuneMinOf = 3

// trivialTuneWork is the edge×width floor below which the sweep is skipped:
// ~a quarter-million element updates complete in tens of microseconds, far
// under timer and scheduler noise.
const trivialTuneWork = 1 << 18

// sweepCount counts completed AutoTune sweeps process-wide. The profile
// cache's tests assert a cache hit performs zero sweeps.
var sweepCount atomic.Int64

// SweepCount returns the number of AutoTune sweeps this process has run —
// observability for the profile cache (a warm cache keeps it flat).
func SweepCount() int64 { return sweepCount.Load() }

// candidateBlocks is the cache-block sweep, pruned so no block holds fewer
// than ~1k vertices (smaller blocks only add bookkeeping).
func candidateBlocks(g *graph.CSR) []int {
	out := []int{1}
	for _, nB := range []int{4, 8, 16} {
		if g.NumVertices/nB >= 1024 {
			out = append(out, nB)
		}
	}
	return out
}

// tuneReps sizes one timed measurement so small graphs are timed over
// several passes (one pass is noise-level) while big graphs pay for a
// single one.
func tuneReps(g *graph.CSR, d int) int {
	work := int64(g.NumEdges) * int64(d)
	switch {
	case work > 1<<24:
		return 1
	case work > 1<<20:
		return 3
	default:
		return 8
	}
}
