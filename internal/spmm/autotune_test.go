package spmm

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"distgnn/internal/tensor"
)

// TestAutoTuneProducesCorrectPlan checks that whatever configuration wins
// the sweep computes the same aggregate as the interpreted baseline.
func TestAutoTuneProducesCorrectPlan(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 500, 3000)
	const d = 20
	opt := AutoTune(g, d)
	if opt.NumBlocks < 1 || opt.ChunkSize < 1 {
		t.Fatalf("AutoTune returned unnormalized options %+v", opt)
	}

	fv := tensor.New(g.NumVertices, d)
	rng := rand.New(rand.NewSource(7))
	for i := range fv.Data {
		fv.Data[i] = rng.Float32() - 0.5
	}
	want := tensor.New(g.NumVertices, d)
	if err := Baseline(&Args{G: g, FV: fv, FO: want, Op: OpCopyLHS, Red: ReduceSum}); err != nil {
		t.Fatal(err)
	}
	got := tensor.New(g.NumVertices, d)
	plan := NewPlan(g, opt)
	if err := plan.Run(&Args{G: g, FV: fv, FO: got, Op: OpCopyLHS, Red: ReduceSum}); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		diff := want.Data[i] - got.Data[i]
		if diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("tuned plan diverges from baseline at %d: %v vs %v",
				i, got.Data[i], want.Data[i])
		}
	}
}

func TestAutoTuneTinyGraph(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 8, 16)
	opt := AutoTune(g, 0) // d ≤ 0 must default, not crash
	if opt.NumBlocks != 1 {
		t.Fatalf("tiny graph should not be blocked, got %+v", opt)
	}
}

// TestAutoTuneTrivialFloorSkipsSweep: graphs below the work floor must not
// pay for a sweep at all.
func TestAutoTuneTrivialFloorSkipsSweep(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 200, 1000)
	before := SweepCount()
	opt := AutoTune(g, 8) // 1000×8 = 8k updates, far below the floor
	if SweepCount() != before {
		t.Fatalf("trivial graph ran a sweep (count %d → %d)", before, SweepCount())
	}
	if opt.NumBlocks != 1 || opt.ChunkSize < 1 {
		t.Fatalf("floor fallback returned unnormalized options %+v", opt)
	}
}

// TestAutoTuneCachedSecondRunZeroSweeps pins the profile-store contract:
// the first call sweeps and persists, the second call with the same key
// performs zero sweep passes and returns the persisted Options.
func TestAutoTuneCachedSecondRunZeroSweeps(t *testing.T) {
	dir := t.TempDir()
	// 12k edges × 32 cols = 384k updates: above the trivial floor, so a
	// sweep genuinely runs on the cold call.
	g := randomGraph(rand.New(rand.NewSource(4)), 3000, 12000)

	before := SweepCount()
	first := AutoTuneCached(g, 32, dir)
	if SweepCount() != before+1 {
		t.Fatalf("cold call must sweep exactly once (count %d → %d)", before, SweepCount())
	}
	second := AutoTuneCached(g, 32, dir)
	if SweepCount() != before+1 {
		t.Fatalf("warm call must perform zero sweeps (count rose to %d)", SweepCount())
	}
	if first != second {
		t.Fatalf("persisted options %+v differ from swept %+v", second, first)
	}

	// A different width is a different key: must sweep again.
	_ = AutoTuneCached(g, 48, dir)
	if SweepCount() != before+2 {
		t.Fatalf("distinct width must miss the cache (count %d)", SweepCount()-before)
	}

	// Corrupt profile degrades to a fresh sweep, not an error.
	key := TuneKey(g, 32)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_ = AutoTuneCached(g, 32, dir)
	if SweepCount() != before+3 {
		t.Fatalf("corrupt profile must re-sweep (count %d)", SweepCount()-before)
	}
}
