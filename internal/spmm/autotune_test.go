package spmm

import (
	"math/rand"
	"testing"

	"distgnn/internal/tensor"
)

// TestAutoTuneProducesCorrectPlan checks that whatever configuration wins
// the sweep computes the same aggregate as the interpreted baseline.
func TestAutoTuneProducesCorrectPlan(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 500, 3000)
	const d = 20
	opt := AutoTune(g, d)
	if opt.NumBlocks < 1 || opt.ChunkSize < 1 {
		t.Fatalf("AutoTune returned unnormalized options %+v", opt)
	}

	fv := tensor.New(g.NumVertices, d)
	rng := rand.New(rand.NewSource(7))
	for i := range fv.Data {
		fv.Data[i] = rng.Float32() - 0.5
	}
	want := tensor.New(g.NumVertices, d)
	if err := Baseline(&Args{G: g, FV: fv, FO: want, Op: OpCopyLHS, Red: ReduceSum}); err != nil {
		t.Fatal(err)
	}
	got := tensor.New(g.NumVertices, d)
	plan := NewPlan(g, opt)
	if err := plan.Run(&Args{G: g, FV: fv, FO: got, Op: OpCopyLHS, Red: ReduceSum}); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		diff := want.Data[i] - got.Data[i]
		if diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("tuned plan diverges from baseline at %d: %v vs %v",
				i, got.Data[i], want.Data[i])
		}
	}
}

func TestAutoTuneTinyGraph(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 8, 16)
	opt := AutoTune(g, 0) // d ≤ 0 must default, not crash
	if opt.NumBlocks != 1 {
		t.Fatalf("tiny graph should not be blocked, got %+v", opt)
	}
}
