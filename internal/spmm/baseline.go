package spmm

import (
	"fmt"

	"distgnn/internal/parallel"
)

// Baseline runs the aggregation primitive exactly as Alg. 1 of the paper
// describes the DGL implementation: destination vertices are statically
// partitioned across threads, and the (⊗, ⊕) operators are dispatched per
// element inside the innermost loop — the interpreted overhead the optimized
// kernels remove.
func Baseline(a *Args) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if a.SrcPrec() != SrcFP32 {
		return fmt.Errorf("spmm: baseline kernel reads fp32 sources only (got %v); use a Plan for bf16", a.SrcPrec())
	}
	a.initOutput()
	g := a.G
	d := a.FO.Cols
	staticParallel(g.NumVertices, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			dst := a.FO.Row(v)
			lo, hi := g.Indptr[v], g.Indptr[v+1]
			for p := lo; p < hi; p++ {
				u := g.Indices[p]
				var src, edge []float32
				if a.FV != nil {
					src = a.FV.Row(int(u))
				}
				if a.FE != nil {
					e := g.EdgeIDs[p]
					edge = a.FE.Row(int(e))
				}
				for j := 0; j < d; j++ {
					var x, y float32
					if src != nil {
						x = src[j]
					}
					if edge != nil {
						y = edge[j]
					}
					dst[j] = a.Red.fold(dst[j], a.Op.apply(x, y))
				}
			}
		}
	})
	a.finalizeEmpty()
	return nil
}

// staticParallel splits [0, n) into one contiguous chunk per pool worker —
// the OpenMP schedule(static) analogue. Power-law degree skew makes chunks
// unbalanced, which is exactly the pathology dynamic scheduling fixes.
func staticParallel(n int, fn func(i0, i1 int)) {
	parallel.For(n, 1, fn)
}
