package spmm

import (
	"math"

	"distgnn/internal/graph"
	"distgnn/internal/parallel"
)

// bf16.go holds the SrcBF16 rung of the source-precision axis: kernel
// bodies that stream bfloat16 vertex features (Args.FVB) and accumulate in
// float32. The hot (⊗, ⊕) combination gets a monomorphic Alg. 3 reordered
// loop that decodes inside the register tile — the uint16 load plus a shift
// replaces the float32 load, halving the bytes read from the source matrix.
// Every other combination decodes each source row into a pooled float32
// scratch buffer and reuses the specialized fp32 row kernels.

// bf16Decode is quant.BF16Decode inlined as a bit op so the innermost loops
// carry no cross-package call (the compiler inlines it either way; keeping
// the shift local makes that obvious in the kernel body).
func bf16Decode(h uint16) float32 { return math.Float32frombits(uint32(h) << 16) }

// bf16Body returns the loop body for a bf16-sourced aggregation: the
// reordered tile kernel for the GNN hot path, else the scratch-decode
// fallback over the fp32 row kernels.
func (p *Plan) bf16Body(a *Args, blk *graph.CSR) func(v0, v1 int) {
	if p.Opt.Reordered && a.Op == OpCopyLHS && a.Red == ReduceSum {
		return func(v0, v1 int) { reorderedCopyLHSSumBF16(a, blk, v0, v1) }
	}
	return bf16ScratchBody(a, blk)
}

// reorderedCopyLHSSumBF16: f_O[v] += Σ_u bf16(f_V[u]) — the Alg. 3 loop of
// reorderedCopyLHSSum with the source rows decoded inside the tile.
func reorderedCopyLHSSumBF16(a *Args, blk *graph.CSR, v0, v1 int) {
	d := a.FO.Cols
	fv := a.FVB.Data
	fo := a.FO.Data
	for v := v0; v < v1; v++ {
		lo, hi := int(blk.Indptr[v]), int(blk.Indptr[v+1])
		if lo == hi {
			continue
		}
		nbr := blk.Indices[lo:hi]
		base := v * d
		var j int
		for ; j+tileW <= d; j += tileW {
			var t [tileW]float32
			copy(t[:], fo[base+j:base+j+tileW])
			for _, u := range nbr {
				s := int(u)*d + j
				src := fv[s : s+tileW : s+tileW]
				for k := 0; k < tileW; k++ {
					t[k] += bf16Decode(src[k])
				}
			}
			copy(fo[base+j:base+j+tileW], t[:])
		}
		for ; j < d; j++ {
			t := fo[base+j]
			for _, u := range nbr {
				t += bf16Decode(fv[int(u)*d+j])
			}
			fo[base+j] = t
		}
	}
}

// bf16RowScratch pools per-range decode buffers so the fallback body does
// not allocate inside the worker loop.
var bf16RowScratch parallel.Scratch[float32]

// bf16ScratchBody decodes each source row into a scratch buffer and drives
// the monomorphic fp32 row kernel — correctness for every (⊗, ⊕) pair at a
// per-row decode cost, still reading half the source bytes from memory.
func bf16ScratchBody(a *Args, blk *graph.CSR) func(v0, v1 int) {
	kern := kernelFor(a.Op, a.Red)
	d := a.FO.Cols
	return func(v0, v1 int) {
		scratch := bf16RowScratch.Get(d)
		defer bf16RowScratch.Put(scratch)
		for v := v0; v < v1; v++ {
			lo, hi := blk.Indptr[v], blk.Indptr[v+1]
			if lo == hi {
				continue
			}
			dst := a.FO.Row(v)
			for q := lo; q < hi; q++ {
				src := a.FVB.DecodeRow(int(blk.Indices[q]), scratch)
				var edge []float32
				if a.FE != nil {
					edge = a.FE.Row(int(blk.EdgeIDs[q]))
				}
				kern(dst, src, edge)
			}
		}
	}
}
