package spmm

import (
	"fmt"

	"distgnn/internal/parallel"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// FeatRows is a read-only vertex-feature row store in one of the two source
// precisions. Exactly one backing is non-nil; the zero value is invalid.
// It is the operand handed to the fused gather→aggregate kernel, which
// switches once on the backing and runs a monomorphic loop — no per-row
// interface dispatch on the hot path.
type FeatRows struct {
	F32 *tensor.Matrix
	B16 *tensor.BF16Matrix
}

// RowsOf wraps a float32 matrix as a FeatRows.
func RowsOf(m *tensor.Matrix) FeatRows { return FeatRows{F32: m} }

// RowsOfBF16 wraps a bf16 matrix as a FeatRows.
func RowsOfBF16(b *tensor.BF16Matrix) FeatRows { return FeatRows{B16: b} }

// Valid reports whether exactly one backing is set.
func (r FeatRows) Valid() bool { return (r.F32 != nil) != (r.B16 != nil) }

// Cols returns the feature width.
func (r FeatRows) Cols() int {
	if r.B16 != nil {
		return r.B16.Cols
	}
	return r.F32.Cols
}

// NumRows returns the row count.
func (r FeatRows) NumRows() int {
	if r.B16 != nil {
		return r.B16.Rows
	}
	return r.F32.Rows
}

// Precision reports the storage format.
func (r FeatRows) Precision() quant.Precision {
	if r.B16 != nil {
		return quant.BF16
	}
	return quant.FP32
}

// CopyRow materializes row i into dst (len ≥ Cols), decoding bf16 rows on
// load, and returns dst[:Cols]. The unfused gather path and caches use it.
func (r FeatRows) CopyRow(dst []float32, i int) []float32 {
	if r.B16 != nil {
		return r.B16.DecodeRow(i, dst)
	}
	dst = dst[:r.F32.Cols]
	copy(dst, r.F32.Row(i))
	return dst
}

// GatherAggGCNSum is the fused gather→aggregate kernel for the copylhs/sum
// GNN hot path over one bipartite block: for every destination i,
//
//	out[i] = (Σ_p feats[frontier[indices[p]]] + feats[frontier[selfIdx[i]]]) · norm[i]
//
// summing block neighbors in index order. It streams source rows straight
// out of the global feature store — no materialized |frontier|×d gathered
// matrix is ever built, removing the gather's write+read traffic and its
// allocation from the per-frontier pass. For fp32 sources the float-op
// order per output element is exactly the gather-then-aggregate order, so
// results are bit-identical to the unfused path (the property the serving
// bit-identity pins rely on); bf16 sources decode rows on load and
// accumulate in float32.
//
// indptr/indices/selfIdx are the bipartite block arrays (minibatch.Block's
// layout): indices and selfIdx hold frontier-local IDs, frontier maps them
// to rows of feats. out must be NumDst×feats.Cols(), zeroed or not — rows
// are overwritten.
func GatherAggGCNSum(out *tensor.Matrix, feats FeatRows, frontier []int32,
	indptr, indices, selfIdx []int32, norm []float32) error {
	if !feats.Valid() {
		return fmt.Errorf("spmm: FeatRows must have exactly one backing")
	}
	d := feats.Cols()
	numDst := len(indptr) - 1
	if out.Rows != numDst || out.Cols != d {
		return fmt.Errorf("spmm: fused output %dx%d, want %dx%d", out.Rows, out.Cols, numDst, d)
	}
	if len(norm) != numDst || len(selfIdx) != numDst {
		return fmt.Errorf("spmm: fused norm/self length %d/%d, want %d", len(norm), len(selfIdx), numDst)
	}
	// Translate block-local IDs to global feature rows once, up front: the
	// inner loops then pay one indirection per edge (the same addressing as
	// an aggregate over a gathered matrix) instead of two. Same rows in the
	// same order — no float op moves.
	gIdx := fusedIdxScratch.Get(len(indices) + numDst)
	defer fusedIdxScratch.Put(gIdx)
	gSelf := gIdx[len(indices):]
	for p, u := range indices {
		gIdx[p] = frontier[u]
	}
	for i, u := range selfIdx {
		gSelf[i] = frontier[u]
	}
	body := func(v0, v1 int) {
		fusedGatherSumFP32(out, feats.F32, gIdx, gSelf, indptr, norm, v0, v1)
	}
	if feats.B16 != nil {
		body = func(v0, v1 int) {
			fusedGatherSumBF16(out, feats.B16, gIdx, gSelf, indptr, norm, v0, v1)
		}
	}
	// Output rows are independent and each is computed by exactly one
	// worker in the same sequential per-row order, so the result is
	// bit-identical under any worker count or schedule. Tiny blocks (and a
	// one-worker pool) run inline — chunk handoff would cost more than the
	// pass.
	if work := (len(indices) + numDst) * d; parallel.Workers() > 1 && work >= fusedParallelWork {
		parallel.Dynamic(numDst, fusedChunk, body)
	} else {
		body(0, numDst)
	}
	return nil
}

const (
	// fusedParallelWork is the edge×width element-update count below which
	// the fused pass stays on the calling goroutine.
	fusedParallelWork = 1 << 15
	// fusedChunk is the dynamic-schedule chunk (destination rows per grab);
	// power-law frontier degree skew self-balances across grabs.
	fusedChunk = 64
)

// fusedIdxScratch pools the per-call translated index buffer.
var fusedIdxScratch parallel.Scratch[int32]

// fusedGatherSumFP32 streams each scattered source row once, whole-row
// contiguous (prefetcher-friendly; a tileW register block would revisit
// every scattered row once per tile and defeat it). gIdx/gSelf hold the
// pre-translated global rows. The per-element op order — neighbors in
// index order, then self, then scale — is exactly
// gather-then-AggregateGCN, so results are bit-identical to the unfused
// path.
func fusedGatherSumFP32(out, feats *tensor.Matrix,
	gIdx, gSelf, indptr []int32, norm []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		dst := out.Row(i)
		for j := range dst {
			dst[j] = 0
		}
		lo, hi := indptr[i], indptr[i+1]
		for p := lo; p < hi; p++ {
			src := feats.Row(int(gIdx[p]))
			for j := range dst {
				dst[j] += src[j]
			}
		}
		self := feats.Row(int(gSelf[i]))
		n := norm[i]
		for j := range dst {
			dst[j] = (dst[j] + self[j]) * n
		}
	}
}

// fusedGatherSumBF16 is fusedGatherSumFP32 over the 16-bit slab: the
// uint16 load + shift decode replaces the float32 load, halving the bytes
// read per scattered row.
func fusedGatherSumBF16(out *tensor.Matrix, feats *tensor.BF16Matrix,
	gIdx, gSelf, indptr []int32, norm []float32, i0, i1 int) {
	d := out.Cols
	for i := i0; i < i1; i++ {
		dst := out.Row(i)
		for j := range dst {
			dst[j] = 0
		}
		lo, hi := indptr[i], indptr[i+1]
		for p := lo; p < hi; p++ {
			src := feats.Row(int(gIdx[p]))[:d]
			for j := range dst {
				dst[j] += bf16Decode(src[j])
			}
		}
		self := feats.Row(int(gSelf[i]))[:d]
		n := norm[i]
		for j := range dst {
			dst[j] = (dst[j] + bf16Decode(self[j])) * n
		}
	}
}
