package spmm

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/tensor"
)

// randomBipartite builds a random block in minibatch.Block layout: numDst
// destinations drawing from a frontier of numSrc global vertices, every dst
// also present in the frontier (prefix convention) for the self term.
func randomBipartite(rng *rand.Rand, numDst, numSrc, maxDeg, numGlobal int) (frontier, indptr, indices, selfIdx []int32) {
	frontier = make([]int32, numSrc)
	seen := map[int32]bool{}
	for i := range frontier {
		for {
			g := int32(rng.Intn(numGlobal))
			if !seen[g] {
				seen[g] = true
				frontier[i] = g
				break
			}
		}
	}
	indptr = make([]int32, numDst+1)
	selfIdx = make([]int32, numDst)
	for i := 0; i < numDst; i++ {
		selfIdx[i] = int32(i) // dst ⊆ src prefix convention
		deg := rng.Intn(maxDeg + 1)
		for k := 0; k < deg; k++ {
			indices = append(indices, int32(rng.Intn(numSrc)))
		}
		indptr[i+1] = int32(len(indices))
	}
	return frontier, indptr, indices, selfIdx
}

// TestFusedGatherSumBitIdenticalToUnfused pins the fusion contract: for
// fp32 sources, streaming rows straight from the global store must produce
// byte-for-byte the output of materialize-the-gather-then-aggregate.
func TestFusedGatherSumBitIdenticalToUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const numGlobal, d = 300, 37 // d odd: exercises tile remainders downstream
	feats := tensor.New(numGlobal, d)
	for i := range feats.Data {
		feats.Data[i] = float32(rng.NormFloat64())
	}
	frontier, indptr, indices, selfIdx := randomBipartite(rng, 50, 120, 8, numGlobal)
	norm := make([]float32, 50)
	for i := range norm {
		norm[i] = 1 / float32(1+indptr[i+1]-indptr[i])
	}

	// Unfused reference: gather the frontier, then aggregate local rows.
	gathered := tensor.New(len(frontier), d)
	for i, g := range frontier {
		copy(gathered.Row(i), feats.Row(int(g)))
	}
	want := tensor.New(50, d)
	for i := 0; i < 50; i++ {
		dst := want.Row(i)
		for p := indptr[i]; p < indptr[i+1]; p++ {
			src := gathered.Row(int(indices[p]))
			for j := range dst {
				dst[j] += src[j]
			}
		}
		self := gathered.Row(int(selfIdx[i]))
		for j := range dst {
			dst[j] = (dst[j] + self[j]) * norm[i]
		}
	}

	got := tensor.New(50, d)
	if err := GatherAggGCNSum(got, RowsOf(feats), frontier, indptr, indices, selfIdx, norm); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("fused diverges from unfused at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	// bf16 source: must equal the fp32 fused pass over the decoded matrix
	// bitwise (decode is exact, accumulation identical).
	slab := tensor.BF16FromMatrix(feats)
	wantB := tensor.New(50, d)
	if err := GatherAggGCNSum(wantB, RowsOf(slab.ToMatrix()), frontier, indptr, indices, selfIdx, norm); err != nil {
		t.Fatal(err)
	}
	gotB := tensor.New(50, d)
	if err := GatherAggGCNSum(gotB, RowsOfBF16(slab), frontier, indptr, indices, selfIdx, norm); err != nil {
		t.Fatal(err)
	}
	for i := range wantB.Data {
		if math.Float32bits(gotB.Data[i]) != math.Float32bits(wantB.Data[i]) {
			t.Fatalf("bf16 fused diverges from decoded fp32 at %d: %v vs %v", i, gotB.Data[i], wantB.Data[i])
		}
	}
}

func TestFusedGatherSumValidates(t *testing.T) {
	feats := tensor.New(4, 3)
	out := tensor.New(1, 3)
	if err := GatherAggGCNSum(out, FeatRows{}, nil, []int32{0, 0}, nil, []int32{0}, []float32{1}); err == nil {
		t.Fatal("zero FeatRows must be rejected")
	}
	if err := GatherAggGCNSum(tensor.New(2, 3), RowsOf(feats), []int32{0}, []int32{0, 0}, nil, []int32{0}, []float32{1}); err == nil {
		t.Fatal("output shape mismatch must be rejected")
	}
	if err := GatherAggGCNSum(out, FeatRows{F32: feats, B16: tensor.NewBF16(4, 3)}, nil, []int32{0, 0}, nil, []int32{0}, []float32{1}); err == nil {
		t.Fatal("double-backed FeatRows must be rejected")
	}
}

// TestPlanBF16MatchesDecodedFP32 pins the source-precision axis across the
// whole optimization ladder: a Plan reading Args.FVB must produce exactly
// the output of the same Plan reading the decoded fp32 matrix, for every
// schedule × blocking × reordering configuration and both hot-path and
// fallback (⊗, ⊕) pairs.
func TestPlanBF16MatchesDecodedFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 400, 2600)
	const d = 21
	slab := tensor.NewBF16(g.NumVertices, d)
	for i := range slab.Data {
		slab.Data[i] = uint16(rng.Intn(1 << 16))
	}
	for i := range slab.Data { // no NaN payloads: equality below is bitwise
		if v := slab.At(i/d, i%d); math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			slab.Data[i] = 0
		}
	}
	decoded := slab.ToMatrix()
	fe := tensor.New(g.NumEdges, d)
	for i := range fe.Data {
		fe.Data[i] = float32(rng.NormFloat64())
	}

	for _, opt := range []Options{
		{NumBlocks: 1, Schedule: ScheduleStatic},
		{NumBlocks: 1, Schedule: ScheduleDynamic, Reordered: true},
		{NumBlocks: 4, Schedule: ScheduleDynamic, Reordered: true},
		{NumBlocks: 4, Schedule: ScheduleStatic, Reordered: false},
	} {
		plan := NewPlan(g, opt)
		for _, tc := range []struct {
			op  Op
			red Reduce
			fe  *tensor.Matrix
		}{
			{OpCopyLHS, ReduceSum, nil}, // reordered bf16 tile kernel
			{OpMul, ReduceSum, fe},      // scratch-decode fallback, binary op
			{OpCopyLHS, ReduceMax, nil}, // scratch-decode fallback, max
		} {
			want := tensor.New(g.NumVertices, d)
			if err := plan.Run(&Args{G: g, FV: decoded, FE: tc.fe, FO: want, Op: tc.op, Red: tc.red}); err != nil {
				t.Fatal(err)
			}
			got := tensor.New(g.NumVertices, d)
			if err := plan.Run(&Args{G: g, FVB: slab, FE: tc.fe, FO: got, Op: tc.op, Red: tc.red}); err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("opt %+v %v/%v: bf16 plan diverges at %d: %v vs %v",
						opt, tc.op, tc.red, i, got.Data[i], want.Data[i])
				}
			}
		}
	}

	// The baseline kernel is fp32-only by contract.
	if err := Baseline(&Args{G: g, FVB: slab, FO: tensor.New(g.NumVertices, d), Op: OpCopyLHS, Red: ReduceSum}); err == nil {
		t.Fatal("Baseline must reject bf16 sources")
	}
	// FV and FVB together are ambiguous.
	if err := (&Args{G: g, FV: decoded, FVB: slab, FO: tensor.New(g.NumVertices, d), Op: OpCopyLHS, Red: ReduceSum}).Validate(); err == nil {
		t.Fatal("Validate must reject FV+FVB")
	}
}
