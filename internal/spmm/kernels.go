package spmm

// rowKernel reduces one source row (and optionally one edge-feature row)
// into one destination row: dst[j] = dst[j] ⊕ (src[j] ⊗ edge[j]) for all j.
// The optimized kernels select a monomorphic rowKernel once per aggregation
// call, hoisting the operator dispatch out of the per-edge inner loop — the
// instruction-count reduction LIBXSMM's JITed kernels provide in the paper.
type rowKernel func(dst, src, edge []float32)

// kernelFor returns the specialized rowKernel for an (⊗, ⊕) pair.
func kernelFor(op Op, red Reduce) rowKernel {
	switch red {
	case ReduceSum:
		switch op {
		case OpCopyLHS:
			return rowCopyLHSSum
		case OpCopyRHS:
			return func(dst, _, edge []float32) { rowCopyLHSSum(dst, edge, nil) }
		case OpAdd:
			return rowBinarySum(func(a, b float32) float32 { return a + b })
		case OpSub:
			return rowBinarySum(func(a, b float32) float32 { return a - b })
		case OpMul:
			return rowMulSum
		case OpDiv:
			return rowBinarySum(func(a, b float32) float32 { return a / b })
		}
	case ReduceMax:
		return rowGeneric(op, func(acc, v float32) float32 {
			if v > acc {
				return v
			}
			return acc
		})
	case ReduceMin:
		return rowGeneric(op, func(acc, v float32) float32 {
			if v < acc {
				return v
			}
			return acc
		})
	}
	panic("spmm: no kernel for " + op.String() + "/" + red.String())
}

// rowCopyLHSSum is the hot path of GNN training: dst += src. Unrolled 4-way
// so the compiler keeps accumulators in registers (the scalar stand-in for
// the SIMD body of Alg. 3).
func rowCopyLHSSum(dst, src, _ []float32) {
	n := len(dst)
	_ = src[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// rowMulSum is the weighted-aggregation hot path: dst += src*edge.
func rowMulSum(dst, src, edge []float32) {
	n := len(dst)
	_ = src[n-1]
	_ = edge[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += src[i] * edge[i]
		dst[i+1] += src[i+1] * edge[i+1]
		dst[i+2] += src[i+2] * edge[i+2]
		dst[i+3] += src[i+3] * edge[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i] * edge[i]
	}
}

func rowBinarySum(apply func(a, b float32) float32) rowKernel {
	return func(dst, src, edge []float32) {
		n := len(dst)
		_ = src[n-1]
		_ = edge[n-1]
		for i := 0; i < n; i++ {
			dst[i] += apply(src[i], edge[i])
		}
	}
}

func rowGeneric(op Op, fold func(acc, v float32) float32) rowKernel {
	switch op {
	case OpCopyLHS:
		return func(dst, src, _ []float32) {
			for i := range dst {
				dst[i] = fold(dst[i], src[i])
			}
		}
	case OpCopyRHS:
		return func(dst, _, edge []float32) {
			for i := range dst {
				dst[i] = fold(dst[i], edge[i])
			}
		}
	default:
		return func(dst, src, edge []float32) {
			for i := range dst {
				dst[i] = fold(dst[i], op.apply(src[i], edge[i]))
			}
		}
	}
}
