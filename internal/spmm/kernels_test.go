package spmm

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelForMatchesScalarReference drives every (⊗, ⊕) pair through its
// specialized rowKernel and checks it bit-exact against the interpreted
// scalar semantics dst[j] = ⊕(dst[j], ⊗(src[j], edge[j])) — the contract
// the monomorphic kernels exist to accelerate, not alter. Row lengths
// cover the 4-way unroll boundaries (0..9 plus a tile-sized row), operands
// include negatives, zeros (left operand only, so div stays NaN-free and
// bit-comparable), and large magnitudes.
func TestKernelForMatchesScalarReference(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpCopyLHS, OpCopyRHS}
	reds := []Reduce{ReduceSum, ReduceMax, ReduceMin}
	rng := rand.New(rand.NewSource(42))
	lengths := []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33}

	fill := func(n int, allowZero bool) []float32 {
		out := make([]float32, n)
		for i := range out {
			switch rng.Intn(8) {
			case 0:
				if allowZero {
					out[i] = 0
				} else {
					out[i] = 1
				}
			case 1:
				out[i] = float32(rng.NormFloat64() * 1e6)
			default:
				out[i] = float32(rng.NormFloat64())
			}
		}
		return out
	}

	for _, op := range ops {
		for _, red := range reds {
			kern := kernelFor(op, red)
			for _, n := range lengths {
				src := fill(n, true)
				edge := fill(n, false) // div's denominator: nonzero
				dst := fill(n, true)
				want := make([]float32, n)
				for j := 0; j < n; j++ {
					want[j] = red.fold(dst[j], op.apply(src[j], edge[j]))
				}
				kern(dst, src, edge)
				for j := 0; j < n; j++ {
					if math.Float32bits(dst[j]) != math.Float32bits(want[j]) {
						t.Fatalf("%s/%s n=%d j=%d: kernel %v (%#08x) vs reference %v (%#08x)",
							op, red, n, j, dst[j], math.Float32bits(dst[j]),
							want[j], math.Float32bits(want[j]))
					}
				}
			}
		}
	}
}

// TestKernelForInvalidEnumsPanic pins the failure mode for out-of-range
// enums: a panic whose message carries the "spmm:" prefix, raised either
// at kernel selection or on first use — never a silently wrong kernel.
func TestKernelForInvalidEnumsPanic(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		red  Reduce
	}{
		{"bad op, sum", Op(99), ReduceSum},
		{"bad op, max", Op(99), ReduceMax},
		{"bad op, min", Op(99), ReduceMin},
		{"bad reduce", OpCopyLHS, Reduce(99)},
		{"both bad", Op(99), Reduce(99)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("kernelFor(%v, %v) must panic", tc.op, tc.red)
				}
				msg, ok := r.(string)
				if !ok || len(msg) < 5 || msg[:5] != "spmm:" {
					t.Fatalf("panic message %v must carry the spmm: prefix", r)
				}
			}()
			kern := kernelFor(tc.op, tc.red)
			// Generic reducers defer the op check to first use.
			buf := make([]float32, 4)
			kern(buf, buf, buf)
		})
	}
}
