package spmm

import (
	"fmt"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// AggregateMaxArg computes the elementwise neighborhood maximum including
// the vertex itself — out[v][j] = max(x[v][j], max_{u∈N(v)} x[u][j]) — and
// records the winning source per output element in argmax (the vertex's
// own ID when the self term wins). The argmax trail makes the reduction
// differentiable: gradients route only to winners (see ScatterMaxGrad),
// which is what GraphSAGE's max-pool aggregator needs for training.
func AggregateMaxArg(g *graph.CSR, x *tensor.Matrix, out *tensor.Matrix, argmax []int32) error {
	if x.Rows != g.NumVertices || !x.SameShape(out) {
		return fmt.Errorf("spmm: max-pool shape mismatch")
	}
	if len(argmax) != len(out.Data) {
		return fmt.Errorf("spmm: argmax length %d != output elements %d", len(argmax), len(out.Data))
	}
	d := x.Cols
	staticParallel(g.NumVertices, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			dst := out.Row(v)
			arg := argmax[v*d : (v+1)*d]
			// Seed with the self term.
			copy(dst, x.Row(v))
			for j := range arg {
				arg[j] = int32(v)
			}
			for _, u := range g.InNeighbors(v) {
				src := x.Row(int(u))
				for j := range dst {
					if src[j] > dst[j] {
						dst[j] = src[j]
						arg[j] = u
					}
				}
			}
		}
	})
	return nil
}

// ScatterMaxGrad routes ∂L/∂out back to the winning inputs recorded by
// AggregateMaxArg: dx[argmax[v][j]][j] += dy[v][j]. Sequential over
// destinations (multiple v may share a winner, so parallel scatter would
// race); the work is O(|V|·d).
func ScatterMaxGrad(dy *tensor.Matrix, argmax []int32, dx *tensor.Matrix) error {
	if len(argmax) != len(dy.Data) {
		return fmt.Errorf("spmm: argmax length %d != gradient elements %d", len(argmax), len(dy.Data))
	}
	if dx.Cols != dy.Cols {
		return fmt.Errorf("spmm: gradient width mismatch")
	}
	d := dy.Cols
	for v := 0; v < dy.Rows; v++ {
		g := dy.Row(v)
		arg := argmax[v*d : (v+1)*d]
		for j, winner := range arg {
			dx.Data[int(winner)*d+j] += g[j]
		}
	}
	return nil
}
