// Package spmm implements DistGNN's Aggregation Primitive (AP): the
// customized SpMM operation of §2.1 and §4 of the paper. An AP is the tuple
// (f_V, f_E, ⊗, ⊕, f_O): for every edge u→v, compute the elementwise binary
// operator ⊗ between the source vertex feature f_V[u] and the edge feature
// f_E[e], and reduce the result into the output f_O[v] with ⊕.
//
// Four kernel generations are provided, mirroring the paper's optimization
// ladder (Fig. 4):
//
//   - Baseline — Alg. 1: per-destination parallel loop with per-edge
//     interpreted operator dispatch, static scheduling (the DGL baseline).
//   - +Dynamic scheduling — chunked work queue over destination vertices.
//   - +Cache blocking — Alg. 2: source-range blocks processed outermost.
//   - +Loop reordering — Alg. 3: feature-dimension tiles held in a register
//     buffer with monomorphic specialized kernels standing in for LIBXSMM's
//     JITed SIMD code.
package spmm

import "fmt"

// Op is the elementwise ⊗ operator applied to (f_V[u], f_E[e]) pairs.
// CopyLHS/CopyRHS are the unary forms of Eq. 2 (one operand is NULL).
type Op uint8

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpCopyLHS // use the vertex feature, ignore edge features
	OpCopyRHS // use the edge feature, ignore vertex features
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpCopyLHS:
		return "copylhs"
	case OpCopyRHS:
		return "copyrhs"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsUnary reports whether the operator uses only one operand.
func (o Op) IsUnary() bool { return o == OpCopyLHS || o == OpCopyRHS }

// SrcPrecision identifies the storage format of the vertex-feature operand
// f_V — the source-precision axis of the aggregation primitive. Outputs and
// accumulators are always float32; only the streamed source rows change
// width, which is where the memory-bandwidth bill (the SpMM roofline limit)
// is paid.
type SrcPrecision uint8

const (
	// SrcFP32 reads f_V from a float32 tensor.Matrix (Args.FV).
	SrcFP32 SrcPrecision = iota
	// SrcBF16 reads f_V from a bfloat16 tensor.BF16Matrix (Args.FVB),
	// decoding rows on load and accumulating in float32 — half the source
	// bytes per element.
	SrcBF16
)

func (p SrcPrecision) String() string {
	if p == SrcBF16 {
		return "bf16"
	}
	return "fp32"
}

// Reduce is the elementwise ⊕ reducer that folds per-edge results into f_O.
type Reduce uint8

const (
	ReduceSum Reduce = iota
	ReduceMax
	ReduceMin
)

func (r Reduce) String() string {
	switch r {
	case ReduceSum:
		return "sum"
	case ReduceMax:
		return "max"
	case ReduceMin:
		return "min"
	}
	return fmt.Sprintf("Reduce(%d)", uint8(r))
}

// Identity returns the identity element of the reducer, used to initialize
// f_O before aggregation.
func (r Reduce) Identity() float32 {
	switch r {
	case ReduceSum:
		return 0
	case ReduceMax:
		return negInf
	case ReduceMin:
		return posInf
	}
	panic("spmm: unknown reducer")
}

const (
	posInf = float32(3.4028235e38)  // math.MaxFloat32
	negInf = float32(-3.4028235e38) // -math.MaxFloat32
)

// apply computes a ⊗ b for scalar operands. Used by the interpreted baseline
// kernel and by reference implementations in tests.
func (o Op) apply(a, b float32) float32 {
	switch o {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpCopyLHS:
		return a
	case OpCopyRHS:
		return b
	}
	panic("spmm: unknown op")
}

// fold computes acc ⊕ v for scalar operands.
func (r Reduce) fold(acc, v float32) float32 {
	switch r {
	case ReduceSum:
		return acc + v
	case ReduceMax:
		if v > acc {
			return v
		}
		return acc
	case ReduceMin:
		if v < acc {
			return v
		}
		return acc
	}
	panic("spmm: unknown reducer")
}
