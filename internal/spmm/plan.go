package spmm

import (
	"fmt"

	"distgnn/internal/graph"
	"distgnn/internal/parallel"
)

// Schedule selects how destination vertices are distributed over workers.
type Schedule uint8

const (
	// ScheduleStatic hands each worker one contiguous chunk (OpenMP static).
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out fixed-size chunks from an atomic work queue
	// (OpenMP dynamic), so power-law degree skew self-balances.
	ScheduleDynamic
)

func (s Schedule) String() string {
	if s == ScheduleDynamic {
		return "dynamic"
	}
	return "static"
}

// Options configure the optimized aggregation kernel — each field is one
// rung of the paper's optimization ladder (Fig. 4).
type Options struct {
	// NumBlocks is nB of Alg. 2: the number of source-range cache blocks.
	// 1 disables blocking.
	NumBlocks int
	// Schedule selects static or dynamic destination scheduling.
	Schedule Schedule
	// Reordered enables the Alg. 3 loop reordering: feature-dimension tiles
	// accumulated in a register buffer and written once per (block, vertex).
	Reordered bool
	// ChunkSize is the number of destination vertices per dynamic work item.
	// Defaults to 64.
	ChunkSize int
}

// DefaultOptions is the full optimization stack with a given block count.
func DefaultOptions(numBlocks int) Options {
	return Options{NumBlocks: numBlocks, Schedule: ScheduleDynamic, Reordered: true}
}

// Plan is a reusable, graph-specific execution plan for the optimized
// aggregation primitive. Building the per-block CSR matrices (line 2 of
// Alg. 2) is done once here and amortized over every training epoch.
type Plan struct {
	G       *graph.CSR
	Opt     Options
	blocked *graph.Blocked // nil when NumBlocks == 1
}

// NewPlan prepares an execution plan for g with the given options.
func NewPlan(g *graph.CSR, opt Options) *Plan {
	if opt.ChunkSize <= 0 {
		opt.ChunkSize = 64
	}
	if opt.NumBlocks < 1 {
		opt.NumBlocks = 1
	}
	p := &Plan{G: g, Opt: opt}
	if opt.NumBlocks > 1 {
		p.blocked = graph.NewBlocked(g, opt.NumBlocks)
	}
	return p
}

// Run executes the aggregation primitive described by a using the plan's
// optimization configuration. a.G must be the graph the plan was built for.
func (p *Plan) Run(a *Args) error {
	if a.G != p.G {
		return fmt.Errorf("spmm: args graph differs from plan graph")
	}
	if err := a.Validate(); err != nil {
		return err
	}
	a.initOutput()
	if p.blocked == nil {
		p.runBlock(a, a.G)
	} else {
		// Blocks are processed outermost (Alg. 2 line 3): all workers sweep
		// destinations for one source block before moving to the next, so
		// the active block of f_V stays cache resident.
		for _, blk := range p.blocked.Blocks {
			p.runBlock(a, blk)
		}
	}
	a.finalizeEmpty()
	return nil
}

// runBlock aggregates all edges of one (possibly whole-graph) CSR block.
func (p *Plan) runBlock(a *Args, blk *graph.CSR) {
	body := p.vertexBody(a, blk)
	p.forEachDst(blk, body)
}

// forEachDst drives the destination-vertex loop under the configured
// schedule on the shared worker pool. fn processes the half-open vertex
// range [v0, v1).
func (p *Plan) forEachDst(blk *graph.CSR, fn func(v0, v1 int)) {
	if p.Opt.Schedule == ScheduleStatic {
		parallel.For(blk.NumVertices, 1, fn)
		return
	}
	parallel.Dynamic(blk.NumVertices, p.Opt.ChunkSize, fn)
}

// vertexBody returns the per-vertex-range aggregation body: either the
// specialized row-kernel loop, or the Alg. 3 reordered loop.
func (p *Plan) vertexBody(a *Args, blk *graph.CSR) func(v0, v1 int) {
	if a.SrcPrec() == SrcBF16 {
		return p.bf16Body(a, blk)
	}
	if p.Opt.Reordered {
		if body := reorderedBody(a, blk); body != nil {
			return body
		}
	}
	kern := kernelFor(a.Op, a.Red)
	return func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			lo, hi := blk.Indptr[v], blk.Indptr[v+1]
			if lo == hi {
				continue
			}
			dst := a.FO.Row(v)
			for q := lo; q < hi; q++ {
				var src, edge []float32
				if a.FV != nil {
					src = a.FV.Row(int(blk.Indices[q]))
				}
				if a.FE != nil {
					edge = a.FE.Row(int(blk.EdgeIDs[q]))
				}
				kern(dst, src, edge)
			}
		}
	}
}
