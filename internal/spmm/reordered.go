package spmm

import "distgnn/internal/graph"

// tileW is the feature-dimension tile width W of Alg. 3. A fixed-size stack
// buffer of tileW floats plays the role of the SIMD register block LIBXSMM
// JITs: each output tile f_O[v][j:j+W] is loaded once, accumulated across
// all of v's neighbors in the block, and stored once.
const tileW = 16

// reorderedBody returns a monomorphic Alg. 3 loop body for the hot (⊗, ⊕)
// combinations, or nil when the combination has no specialized reordered
// implementation (the caller then falls back to the row-kernel body).
func reorderedBody(a *Args, blk *graph.CSR) func(v0, v1 int) {
	switch {
	case a.Op == OpCopyLHS && a.Red == ReduceSum:
		return func(v0, v1 int) { reorderedCopyLHSSum(a, blk, v0, v1) }
	case a.Op == OpMul && a.Red == ReduceSum:
		return func(v0, v1 int) { reorderedMulSum(a, blk, v0, v1) }
	case a.Op == OpAdd && a.Red == ReduceSum:
		return func(v0, v1 int) { reorderedAddSum(a, blk, v0, v1) }
	case a.Op == OpCopyLHS && a.Red == ReduceMax:
		return func(v0, v1 int) { reorderedCopyLHSMax(a, blk, v0, v1) }
	default:
		return nil
	}
}

// reorderedCopyLHSSum: f_O[v] += Σ_u f_V[u] — the GNN training hot path.
func reorderedCopyLHSSum(a *Args, blk *graph.CSR, v0, v1 int) {
	d := a.FO.Cols
	fv := a.FV.Data
	fo := a.FO.Data
	for v := v0; v < v1; v++ {
		lo, hi := int(blk.Indptr[v]), int(blk.Indptr[v+1])
		if lo == hi {
			continue
		}
		nbr := blk.Indices[lo:hi]
		base := v * d
		var j int
		for ; j+tileW <= d; j += tileW {
			var t [tileW]float32
			copy(t[:], fo[base+j:base+j+tileW])
			for _, u := range nbr {
				s := int(u)*d + j
				src := fv[s : s+tileW : s+tileW]
				for k := 0; k < tileW; k++ {
					t[k] += src[k]
				}
			}
			copy(fo[base+j:base+j+tileW], t[:])
		}
		// Remainder columns.
		for ; j < d; j++ {
			t := fo[base+j]
			for _, u := range nbr {
				t += fv[int(u)*d+j]
			}
			fo[base+j] = t
		}
	}
}

// reorderedMulSum: f_O[v] += Σ_e f_V[u]·f_E[e] (weighted aggregation).
func reorderedMulSum(a *Args, blk *graph.CSR, v0, v1 int) {
	d := a.FO.Cols
	fv, fe, fo := a.FV.Data, a.FE.Data, a.FO.Data
	for v := v0; v < v1; v++ {
		lo, hi := int(blk.Indptr[v]), int(blk.Indptr[v+1])
		if lo == hi {
			continue
		}
		nbr := blk.Indices[lo:hi]
		ids := blk.EdgeIDs[lo:hi]
		base := v * d
		var j int
		for ; j+tileW <= d; j += tileW {
			var t [tileW]float32
			copy(t[:], fo[base+j:base+j+tileW])
			for i, u := range nbr {
				s := int(u)*d + j
				e := int(ids[i])*d + j
				src := fv[s : s+tileW : s+tileW]
				ef := fe[e : e+tileW : e+tileW]
				for k := 0; k < tileW; k++ {
					t[k] += src[k] * ef[k]
				}
			}
			copy(fo[base+j:base+j+tileW], t[:])
		}
		for ; j < d; j++ {
			t := fo[base+j]
			for i, u := range nbr {
				t += fv[int(u)*d+j] * fe[int(ids[i])*d+j]
			}
			fo[base+j] = t
		}
	}
}

// reorderedAddSum: f_O[v] += Σ_e (f_V[u] + f_E[e]).
func reorderedAddSum(a *Args, blk *graph.CSR, v0, v1 int) {
	d := a.FO.Cols
	fv, fe, fo := a.FV.Data, a.FE.Data, a.FO.Data
	for v := v0; v < v1; v++ {
		lo, hi := int(blk.Indptr[v]), int(blk.Indptr[v+1])
		if lo == hi {
			continue
		}
		nbr := blk.Indices[lo:hi]
		ids := blk.EdgeIDs[lo:hi]
		base := v * d
		var j int
		for ; j+tileW <= d; j += tileW {
			var t [tileW]float32
			copy(t[:], fo[base+j:base+j+tileW])
			for i, u := range nbr {
				s := int(u)*d + j
				e := int(ids[i])*d + j
				src := fv[s : s+tileW : s+tileW]
				ef := fe[e : e+tileW : e+tileW]
				for k := 0; k < tileW; k++ {
					t[k] += src[k] + ef[k]
				}
			}
			copy(fo[base+j:base+j+tileW], t[:])
		}
		for ; j < d; j++ {
			t := fo[base+j]
			for i, u := range nbr {
				t += fv[int(u)*d+j] + fe[int(ids[i])*d+j]
			}
			fo[base+j] = t
		}
	}
}

// reorderedCopyLHSMax: f_O[v] = max over neighbors of f_V[u] (max pooling).
func reorderedCopyLHSMax(a *Args, blk *graph.CSR, v0, v1 int) {
	d := a.FO.Cols
	fv, fo := a.FV.Data, a.FO.Data
	for v := v0; v < v1; v++ {
		lo, hi := int(blk.Indptr[v]), int(blk.Indptr[v+1])
		if lo == hi {
			continue
		}
		nbr := blk.Indices[lo:hi]
		base := v * d
		var j int
		for ; j+tileW <= d; j += tileW {
			var t [tileW]float32
			copy(t[:], fo[base+j:base+j+tileW])
			for _, u := range nbr {
				s := int(u)*d + j
				src := fv[s : s+tileW : s+tileW]
				for k := 0; k < tileW; k++ {
					if src[k] > t[k] {
						t[k] = src[k]
					}
				}
			}
			copy(fo[base+j:base+j+tileW], t[:])
		}
		for ; j < d; j++ {
			t := fo[base+j]
			for _, u := range nbr {
				if s := fv[int(u)*d+j]; s > t {
					t = s
				}
			}
			fo[base+j] = t
		}
	}
}
