package spmm

import (
	"fmt"
	"math"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// SDDMMOp is the per-edge operator of the SDDMM primitive. DGL (§2.2 of
// the paper) formulates computations on edges — attention scores, edge
// gating — as sampled dense-dense matrix multiplication: for every edge
// u→v, combine the endpoint feature vectors.
type SDDMMOp uint8

const (
	// SDDMMAdd, …, SDDMMDiv produce an elementwise |E|×d result.
	SDDMMAdd SDDMMOp = iota
	SDDMMSub
	SDDMMMul
	SDDMMDiv
	// SDDMMDot produces the |E|×1 inner product — the GAT/transformer
	// attention-score pattern.
	SDDMMDot
	// SDDMMCopyU / SDDMMCopyV copy one endpoint's features to the edge.
	SDDMMCopyU
	SDDMMCopyV
)

func (o SDDMMOp) String() string {
	switch o {
	case SDDMMAdd:
		return "add"
	case SDDMMSub:
		return "sub"
	case SDDMMMul:
		return "mul"
	case SDDMMDiv:
		return "div"
	case SDDMMDot:
		return "dot"
	case SDDMMCopyU:
		return "copyu"
	case SDDMMCopyV:
		return "copyv"
	}
	return fmt.Sprintf("SDDMMOp(%d)", uint8(o))
}

// OutCols returns the output width for input width d.
func (o SDDMMOp) OutCols(d int) int {
	if o == SDDMMDot {
		return 1
	}
	return d
}

// SDDMM computes, for every edge u→v of g, out[e] = fU[u] ⊗ fV[v], where
// out is indexed by edge ID. fU and fV are |V|×d matrices (they may alias
// each other — the common case scores a vertex embedding against itself).
// out must be |E|×OutCols(d). Parallelized over destination vertices: each
// edge is written exactly once, so there are no write conflicts.
func SDDMM(g *graph.CSR, fU, fV *tensor.Matrix, op SDDMMOp, out *tensor.Matrix) error {
	if fU == nil && op != SDDMMCopyV {
		return fmt.Errorf("spmm: sddmm %v requires source features", op)
	}
	if fV == nil && op != SDDMMCopyU {
		return fmt.Errorf("spmm: sddmm %v requires destination features", op)
	}
	d := 0
	if fU != nil {
		if fU.Rows != g.NumVertices {
			return fmt.Errorf("spmm: sddmm fU rows %d != vertices %d", fU.Rows, g.NumVertices)
		}
		d = fU.Cols
	}
	if fV != nil {
		if fV.Rows != g.NumVertices {
			return fmt.Errorf("spmm: sddmm fV rows %d != vertices %d", fV.Rows, g.NumVertices)
		}
		if d != 0 && fV.Cols != d {
			return fmt.Errorf("spmm: sddmm width mismatch %d vs %d", fU.Cols, fV.Cols)
		}
		d = fV.Cols
	}
	if out.Rows != g.NumEdges || out.Cols != op.OutCols(d) {
		return fmt.Errorf("spmm: sddmm output %dx%d, want %dx%d",
			out.Rows, out.Cols, g.NumEdges, op.OutCols(d))
	}
	staticParallel(g.NumVertices, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			nbr := g.InNeighbors(v)
			ids := g.InEdgeIDs(v)
			var dst []float32
			if fV != nil {
				dst = fV.Row(v)
			}
			for i, u := range nbr {
				e := int(ids[i])
				var src []float32
				if fU != nil {
					src = fU.Row(int(u))
				}
				o := out.Row(e)
				switch op {
				case SDDMMAdd:
					for j := range o {
						o[j] = src[j] + dst[j]
					}
				case SDDMMSub:
					for j := range o {
						o[j] = src[j] - dst[j]
					}
				case SDDMMMul:
					for j := range o {
						o[j] = src[j] * dst[j]
					}
				case SDDMMDiv:
					for j := range o {
						o[j] = src[j] / dst[j]
					}
				case SDDMMDot:
					var s float32
					for j := range src {
						s += src[j] * dst[j]
					}
					o[0] = s
				case SDDMMCopyU:
					copy(o, src)
				case SDDMMCopyV:
					copy(o, dst)
				}
			}
		}
	})
	return nil
}

// EdgeSoftmax normalizes per-edge scalar scores (|E|×1) over each
// destination vertex's in-edges, in place — the attention normalization of
// GAT. Numerically stabilized with the per-destination max.
func EdgeSoftmax(g *graph.CSR, scores *tensor.Matrix) error {
	if scores.Rows != g.NumEdges || scores.Cols != 1 {
		return fmt.Errorf("spmm: edge softmax wants |E|x1 scores, got %dx%d",
			scores.Rows, scores.Cols)
	}
	staticParallel(g.NumVertices, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			ids := g.InEdgeIDs(v)
			if len(ids) == 0 {
				continue
			}
			maxV := scores.Data[ids[0]]
			for _, e := range ids[1:] {
				if scores.Data[e] > maxV {
					maxV = scores.Data[e]
				}
			}
			var sum float64
			for _, e := range ids {
				x := float64(scores.Data[e] - maxV)
				ex := expf(x)
				scores.Data[e] = float32(ex)
				sum += ex
			}
			inv := float32(1 / sum)
			for _, e := range ids {
				scores.Data[e] *= inv
			}
		}
	})
	return nil
}

// AggregateWeighted computes out[v] = Σ_{e: u→v} w[e]·x[u] — the weighted
// aggregation attention models use, with per-edge scalar weights. w is
// indexed by edge ID. Parallelized over destinations.
func AggregateWeighted(g *graph.CSR, x *tensor.Matrix, w []float32, out *tensor.Matrix) error {
	if x.Rows != g.NumVertices || out.Rows != g.NumVertices || x.Cols != out.Cols {
		return fmt.Errorf("spmm: weighted aggregate shape mismatch")
	}
	if len(w) != g.NumEdges {
		return fmt.Errorf("spmm: weights cover %d edges, graph has %d", len(w), g.NumEdges)
	}
	out.Zero()
	staticParallel(g.NumVertices, func(v0, v1 int) {
		for v := v0; v < v1; v++ {
			nbr := g.InNeighbors(v)
			ids := g.InEdgeIDs(v)
			dst := out.Row(v)
			for i, u := range nbr {
				alpha := w[ids[i]]
				if alpha == 0 {
					continue
				}
				src := x.Row(int(u))
				for j := range dst {
					dst[j] += alpha * src[j]
				}
			}
		}
	})
	return nil
}

// expf is math.Exp specialized through float64 (kept as a helper so the
// softmax loop body stays small enough to inline the common path).
func expf(x float64) float64 {
	// Guard against overflow for pathological score spreads.
	if x < -80 {
		return 0
	}
	return math.Exp(x)
}
