package spmm

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

func TestSDDMMElementwiseOps(t *testing.T) {
	g := graph.MustCSR(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 0}})
	fU := tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	fV := tensor.FromSlice(3, 2, []float32{10, 20, 30, 40, 50, 60})
	edges := g.Edges()

	cases := []struct {
		op    SDDMMOp
		check func(u, v, j int) float32
	}{
		{SDDMMAdd, func(u, v, j int) float32 { return fU.At(u, j) + fV.At(v, j) }},
		{SDDMMSub, func(u, v, j int) float32 { return fU.At(u, j) - fV.At(v, j) }},
		{SDDMMMul, func(u, v, j int) float32 { return fU.At(u, j) * fV.At(v, j) }},
		{SDDMMDiv, func(u, v, j int) float32 { return fU.At(u, j) / fV.At(v, j) }},
		{SDDMMCopyU, func(u, v, j int) float32 { return fU.At(u, j) }},
		{SDDMMCopyV, func(u, v, j int) float32 { return fV.At(v, j) }},
	}
	for _, tc := range cases {
		out := tensor.New(g.NumEdges, 2)
		if err := SDDMM(g, fU, fV, tc.op, out); err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		for e, ed := range edges {
			for j := 0; j < 2; j++ {
				want := tc.check(int(ed.Src), int(ed.Dst), j)
				if got := out.At(e, j); got != want {
					t.Fatalf("%v edge %d col %d: got %v want %v", tc.op, e, j, got, want)
				}
			}
		}
	}
}

func TestSDDMMDot(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	fU := tensor.FromSlice(2, 3, []float32{1, 2, 3, 0, 0, 0})
	fV := tensor.FromSlice(2, 3, []float32{0, 0, 0, 4, 5, 6})
	out := tensor.New(1, 1)
	if err := SDDMM(g, fU, fV, SDDMMDot, out); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 1*4+2*5+3*6 {
		t.Fatalf("dot = %v", out.At(0, 0))
	}
}

func TestSDDMMValidation(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	f := tensor.New(2, 3)
	if err := SDDMM(g, nil, f, SDDMMAdd, tensor.New(1, 3)); err == nil {
		t.Fatal("missing fU must error")
	}
	if err := SDDMM(g, f, nil, SDDMMAdd, tensor.New(1, 3)); err == nil {
		t.Fatal("missing fV must error")
	}
	if err := SDDMM(g, f, tensor.New(2, 4), SDDMMAdd, tensor.New(1, 3)); err == nil {
		t.Fatal("width mismatch must error")
	}
	if err := SDDMM(g, f, f, SDDMMDot, tensor.New(1, 3)); err == nil {
		t.Fatal("dot output must be |E|x1")
	}
	if err := SDDMM(g, tensor.New(5, 3), f, SDDMMAdd, tensor.New(1, 3)); err == nil {
		t.Fatal("fU row mismatch must error")
	}
}

func TestEdgeSoftmaxNormalizesPerDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 400)
	scores := tensor.New(g.NumEdges, 1)
	tensor.RandomNormal(scores, rng, 2)
	if err := EdgeSoftmax(g, scores); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices; v++ {
		ids := g.InEdgeIDs(v)
		if len(ids) == 0 {
			continue
		}
		var sum float64
		for _, e := range ids {
			a := scores.Data[e]
			if a < 0 || a > 1 {
				t.Fatalf("attention weight %v out of [0,1]", a)
			}
			sum += float64(a)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("vertex %d attention sums to %v", v, sum)
		}
	}
}

func TestEdgeSoftmaxStableWithLargeScores(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 1}})
	scores := tensor.FromSlice(2, 1, []float32{500, 501})
	if err := EdgeSoftmax(g, scores); err != nil {
		t.Fatal(err)
	}
	for _, v := range scores.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("unstable softmax: %v", scores.Data)
		}
	}
	if scores.Data[1] <= scores.Data[0] {
		t.Fatal("softmax must be monotone")
	}
}

func TestEdgeSoftmaxValidation(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	if err := EdgeSoftmax(g, tensor.New(1, 2)); err == nil {
		t.Fatal("non-scalar scores must error")
	}
	if err := EdgeSoftmax(g, tensor.New(5, 1)); err == nil {
		t.Fatal("wrong edge count must error")
	}
}

func TestAggregateWeightedMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 30, 200)
	x := tensor.New(30, 5)
	tensor.RandomNormal(x, rng, 1)
	w := make([]float32, g.NumEdges)
	for i := range w {
		w[i] = rng.Float32()
	}
	out := tensor.New(30, 5)
	if err := AggregateWeighted(g, x, w, out); err != nil {
		t.Fatal(err)
	}
	want := tensor.New(30, 5)
	for _, e := range g.Edges() {
		// Recover the edge ID by matching; easier: recompute via CSR below.
		_ = e
	}
	for v := 0; v < 30; v++ {
		nbr := g.InNeighbors(v)
		ids := g.InEdgeIDs(v)
		row := want.Row(v)
		for i, u := range nbr {
			src := x.Row(int(u))
			for j := range row {
				row[j] += w[ids[i]] * src[j]
			}
		}
	}
	if d := out.MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("weighted aggregate diff %v", d)
	}
}

func TestAggregateWeightedUniformEqualsAP(t *testing.T) {
	// With all weights 1, weighted aggregation equals the copylhs/sum AP.
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 300)
	x := tensor.New(40, 8)
	tensor.RandomNormal(x, rng, 1)
	w := make([]float32, g.NumEdges)
	for i := range w {
		w[i] = 1
	}
	weighted := tensor.New(40, 8)
	if err := AggregateWeighted(g, x, w, weighted); err != nil {
		t.Fatal(err)
	}
	ap := &Args{G: g, FV: x, FO: tensor.New(40, 8), Op: OpCopyLHS, Red: ReduceSum}
	if err := Baseline(ap); err != nil {
		t.Fatal(err)
	}
	if d := weighted.MaxAbsDiff(ap.FO); d > 1e-4 {
		t.Fatalf("uniform weighted aggregate differs from AP by %v", d)
	}
}

func TestAggregateWeightedValidation(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	x := tensor.New(2, 3)
	if err := AggregateWeighted(g, x, []float32{1, 2}, tensor.New(2, 3)); err == nil {
		t.Fatal("wrong weight count must error")
	}
	if err := AggregateWeighted(g, x, []float32{1}, tensor.New(2, 4)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestAggregateMaxArgMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomGraph(rng, 40, 250)
	x := tensor.New(40, 6)
	tensor.RandomNormal(x, rng, 1)
	out := tensor.New(40, 6)
	argmax := make([]int32, len(out.Data))
	if err := AggregateMaxArg(g, x, out, argmax); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		for j := 0; j < 6; j++ {
			want := x.At(v, j)
			for _, u := range g.InNeighbors(v) {
				if s := x.At(int(u), j); s > want {
					want = s
				}
			}
			if out.At(v, j) != want {
				t.Fatalf("max at (%d,%d): got %v want %v", v, j, out.At(v, j), want)
			}
			winner := argmax[v*6+j]
			if x.At(int(winner), j) != want {
				t.Fatalf("argmax at (%d,%d) points to non-winner", v, j)
			}
		}
	}
}

func TestScatterMaxGradRoutesToWinners(t *testing.T) {
	g := graph.MustCSR(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	x := tensor.FromSlice(3, 2, []float32{
		5, 0, // vertex 0 wins column 0
		0, 5, // vertex 1 wins column 1
		1, 1,
	})
	out := tensor.New(3, 2)
	argmax := make([]int32, 6)
	if err := AggregateMaxArg(g, x, out, argmax); err != nil {
		t.Fatal(err)
	}
	dy := tensor.New(3, 2)
	dy.Set(2, 0, 10)
	dy.Set(2, 1, 20)
	dx := tensor.New(3, 2)
	if err := ScatterMaxGrad(dy, argmax, dx); err != nil {
		t.Fatal(err)
	}
	if dx.At(0, 0) != 10 || dx.At(1, 1) != 20 {
		t.Fatalf("gradients not routed to winners: %v", dx.Data)
	}
	if dx.At(2, 0) != 0 || dx.At(2, 1) != 0 {
		t.Fatalf("losers received gradient: %v", dx.Data)
	}
}

func TestMaxPoolValidation(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	x := tensor.New(2, 3)
	if err := AggregateMaxArg(g, x, tensor.New(2, 4), make([]int32, 8)); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if err := AggregateMaxArg(g, x, tensor.New(2, 3), make([]int32, 2)); err == nil {
		t.Fatal("argmax length mismatch must error")
	}
	if err := ScatterMaxGrad(tensor.New(2, 3), make([]int32, 2), tensor.New(2, 3)); err == nil {
		t.Fatal("argmax length mismatch must error")
	}
}
