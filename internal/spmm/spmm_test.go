package spmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distgnn/internal/graph"
	"distgnn/internal/tensor"
)

// reference is a sequential float64 implementation of the AP used as the
// ground truth for every kernel variant.
func reference(a *Args) *tensor.Matrix {
	g := a.G
	d := a.FO.Cols
	out := tensor.New(g.NumVertices, d)
	acc := make([]float64, d)
	for v := 0; v < g.NumVertices; v++ {
		for j := range acc {
			acc[j] = float64(a.Red.Identity())
		}
		nbr := g.InNeighbors(v)
		ids := g.InEdgeIDs(v)
		for i := range nbr {
			for j := 0; j < d; j++ {
				var x, y float32
				if a.FV != nil {
					x = a.FV.At(int(nbr[i]), j)
				}
				if a.FE != nil {
					y = a.FE.At(int(ids[i]), j)
				}
				acc[j] = float64(a.Red.fold(float32(acc[j]), a.Op.apply(x, y)))
			}
		}
		row := out.Row(v)
		if len(nbr) == 0 {
			continue // zero row, matching finalizeEmpty
		}
		for j := 0; j < d; j++ {
			row[j] = float32(acc[j])
		}
	}
	return out
}

func randomGraph(rng *rand.Rand, n, m int) *graph.CSR {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return graph.MustCSR(n, edges)
}

func randomArgs(rng *rand.Rand, g *graph.CSR, d int, op Op, red Reduce) *Args {
	a := &Args{G: g, FO: tensor.New(g.NumVertices, d), Op: op, Red: red}
	if op != OpCopyRHS {
		a.FV = tensor.New(g.NumVertices, d)
		tensor.RandomUniform(a.FV, rng, 0.5, 2.0) // positive: safe for div
	}
	if op != OpCopyLHS {
		a.FE = tensor.New(g.NumEdges, d)
		tensor.RandomUniform(a.FE, rng, 0.5, 2.0)
	}
	return a
}

var allOps = []Op{OpAdd, OpSub, OpMul, OpDiv, OpCopyLHS, OpCopyRHS}
var allReds = []Reduce{ReduceSum, ReduceMax, ReduceMin}

func TestBaselineMatchesReferenceAllOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 40, 300)
	for _, op := range allOps {
		for _, red := range allReds {
			a := randomArgs(rng, g, 9, op, red)
			want := reference(a)
			if err := Baseline(a); err != nil {
				t.Fatalf("%v/%v: %v", op, red, err)
			}
			if d := a.FO.MaxAbsDiff(want); d > 1e-3 {
				t.Fatalf("%v/%v: max diff %v", op, red, d)
			}
		}
	}
}

func TestOptimizedMatchesReferenceAllConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 60, 500)
	configs := []Options{
		{NumBlocks: 1, Schedule: ScheduleStatic},
		{NumBlocks: 1, Schedule: ScheduleDynamic},
		{NumBlocks: 4, Schedule: ScheduleDynamic},
		{NumBlocks: 4, Schedule: ScheduleDynamic, Reordered: true},
		{NumBlocks: 16, Schedule: ScheduleStatic, Reordered: true},
		{NumBlocks: 1, Schedule: ScheduleDynamic, Reordered: true, ChunkSize: 3},
	}
	for _, opt := range configs {
		plan := NewPlan(g, opt)
		for _, op := range allOps {
			for _, red := range allReds {
				a := randomArgs(rng, g, 21, op, red) // 21 exercises tile remainder
				want := reference(a)
				if err := plan.Run(a); err != nil {
					t.Fatalf("opt=%+v %v/%v: %v", opt, op, red, err)
				}
				if d := a.FO.MaxAbsDiff(want); d > 1e-3 {
					t.Fatalf("opt=%+v %v/%v: max diff %v", opt, op, red, d)
				}
			}
		}
	}
}

func TestFeatureWidthsIncludingTileEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 200)
	plan := NewPlan(g, DefaultOptions(4))
	for _, d := range []int{1, 2, 15, 16, 17, 32, 33, 48} {
		a := randomArgs(rng, g, d, OpCopyLHS, ReduceSum)
		want := reference(a)
		if err := plan.Run(a); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if diff := a.FO.MaxAbsDiff(want); diff > 1e-3 {
			t.Fatalf("d=%d: max diff %v", d, diff)
		}
	}
}

func TestIsolatedVerticesAggregateToZero(t *testing.T) {
	// Vertex 2 has no in-edges; for max/min it must read 0, not ±inf.
	g := graph.MustCSR(3, []graph.Edge{{Src: 0, Dst: 1}})
	for _, red := range allReds {
		a := &Args{
			G:   g,
			FV:  tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6}),
			FO:  tensor.New(3, 2),
			Op:  OpCopyLHS,
			Red: red,
		}
		if err := Baseline(a); err != nil {
			t.Fatal(err)
		}
		for _, v := range a.FO.Row(2) {
			if v != 0 {
				t.Fatalf("red=%v: isolated vertex row = %v, want zeros", red, a.FO.Row(2))
			}
		}
		if got := a.FO.Row(1); got[0] != 1 || got[1] != 2 {
			t.Fatalf("red=%v: row 1 = %v, want [1 2]", red, got)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	g := graph.MustCSR(3, []graph.Edge{{Src: 0, Dst: 1}})
	cases := []struct {
		name string
		args Args
	}{
		{"nil graph", Args{FO: tensor.New(3, 2)}},
		{"nil output", Args{G: g}},
		{"wrong output rows", Args{G: g, FV: tensor.New(3, 2), FO: tensor.New(2, 2)}},
		{"missing FV", Args{G: g, FO: tensor.New(3, 2), Op: OpCopyLHS}},
		{"missing FE", Args{G: g, FV: tensor.New(3, 2), FO: tensor.New(3, 2), Op: OpMul}},
		{"FE wrong rows", Args{G: g, FV: tensor.New(3, 2), FE: tensor.New(5, 2), FO: tensor.New(3, 2), Op: OpMul}},
		{"FV cols mismatch", Args{G: g, FV: tensor.New(3, 4), FO: tensor.New(3, 2), Op: OpCopyLHS}},
	}
	for _, tc := range cases {
		if err := tc.args.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestValidateRejectsAliasedOutput(t *testing.T) {
	g := graph.MustCSR(2, []graph.Edge{{Src: 0, Dst: 1}})
	x := tensor.New(2, 2)
	a := Args{G: g, FV: x, FO: x, Op: OpCopyLHS, Red: ReduceSum}
	if err := a.Validate(); err == nil {
		t.Fatal("expected aliasing error")
	}
}

func TestPlanRejectsForeignGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g1 := randomGraph(rng, 10, 30)
	g2 := randomGraph(rng, 10, 30)
	plan := NewPlan(g1, DefaultOptions(2))
	a := randomArgs(rng, g2, 4, OpCopyLHS, ReduceSum)
	if err := plan.Run(a); err == nil {
		t.Fatal("expected error for mismatched graph")
	}
}

func TestReduceIdentity(t *testing.T) {
	if ReduceSum.Identity() != 0 {
		t.Fatal("sum identity must be 0")
	}
	if ReduceMax.Identity() >= 0 {
		t.Fatal("max identity must be very negative")
	}
	if ReduceMin.Identity() <= 0 {
		t.Fatal("min identity must be very positive")
	}
}

func TestOpStringsAndUnary(t *testing.T) {
	if OpCopyLHS.String() != "copylhs" || !OpCopyLHS.IsUnary() {
		t.Fatal("copylhs metadata wrong")
	}
	if OpAdd.IsUnary() {
		t.Fatal("add is binary")
	}
	if ReduceMax.String() != "max" {
		t.Fatal("reduce string wrong")
	}
}

// Property: aggregation with CopyLHS/Sum is linear in the input features.
func TestAggregationLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 25, 120)
	plan := NewPlan(g, DefaultOptions(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(25, 8)
		y := tensor.New(25, 8)
		tensor.RandomNormal(x, r, 1)
		tensor.RandomNormal(y, r, 1)

		run := func(in *tensor.Matrix) *tensor.Matrix {
			a := &Args{G: g, FV: in, FO: tensor.New(25, 8), Op: OpCopyLHS, Red: ReduceSum}
			if err := plan.Run(a); err != nil {
				t.Fatal(err)
			}
			return a.FO
		}
		sum := x.Clone()
		sum.Add(y)
		lhs := run(sum)
		rhs := run(x)
		rhs.Add(run(y))
		return lhs.MaxAbsDiff(rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-aggregation output is bounded by the global feature max.
func TestMaxAggregationBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 30, 200)
	plan := NewPlan(g, DefaultOptions(2))
	a := randomArgs(rng, g, 6, OpCopyLHS, ReduceMax)
	if err := plan.Run(a); err != nil {
		t.Fatal(err)
	}
	var globalMax float32 = -1e30
	for _, v := range a.FV.Data {
		if v > globalMax {
			globalMax = v
		}
	}
	for _, v := range a.FO.Data {
		if v > globalMax {
			t.Fatalf("max aggregate %v exceeds global max %v", v, globalMax)
		}
	}
}

// Property: sum aggregation over the reverse graph preserves the total mass:
// Σ_v out[v] = Σ_u deg_out(u)·x[u], i.e. column sums scale by degrees.
func TestSumAggregationMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 20, 100)
	x := tensor.New(20, 4)
	tensor.RandomNormal(x, rng, 1)
	a := &Args{G: g, FV: x, FO: tensor.New(20, 4), Op: OpCopyLHS, Red: ReduceSum}
	if err := Baseline(a); err != nil {
		t.Fatal(err)
	}
	outDeg := make([]float64, 20)
	for _, e := range g.Edges() {
		outDeg[e.Src]++
	}
	for j := 0; j < 4; j++ {
		var lhs, rhs float64
		for v := 0; v < 20; v++ {
			lhs += float64(a.FO.At(v, j))
			rhs += outDeg[v] * float64(x.At(v, j))
		}
		if math.Abs(lhs-rhs) > 1e-2 {
			t.Fatalf("col %d: mass %v vs %v", j, lhs, rhs)
		}
	}
}

func TestEmptyGraphAggregation(t *testing.T) {
	g := graph.MustCSR(5, nil)
	a := &Args{G: g, FV: tensor.New(5, 3), FO: tensor.New(5, 3), Op: OpCopyLHS, Red: ReduceSum}
	if err := Baseline(a); err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(g, DefaultOptions(2))
	if err := plan.Run(a); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" {
		t.Fatal("schedule strings wrong")
	}
}
