package spmm

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"distgnn/internal/graph"
	"distgnn/internal/parallel"
)

// tunecache.go persists AutoTune winners so a training run pays the sweep
// once per (dataset, feature width, worker count, machine) instead of once
// per process. The paper's Fig. 4 sweep is exactly such a per-dataset
// per-machine artifact; re-deriving it on every launch is pure startup tax.
// Profiles are one small JSON file per key under a cache directory; a
// version bump invalidates every stored profile when the candidate lattice
// or the Options encoding changes.

// tuneProfileVersion invalidates persisted profiles when the sweep lattice
// or the Options schema changes shape.
const tuneProfileVersion = 1

// tuneProfile is the on-disk form of one persisted AutoTune result.
type tuneProfile struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	// The sweep inputs, recorded for humans reading the cache dir.
	NumVertices int    `json:"num_vertices"`
	NumEdges    int    `json:"num_edges"`
	Width       int    `json:"width"`
	Workers     int    `json:"workers"`
	Machine     string `json:"machine"`
	TunedAt     string `json:"tuned_at"`
	// The winner.
	NumBlocks int    `json:"num_blocks"`
	Schedule  string `json:"schedule"`
	Reordered bool   `json:"reordered"`
	ChunkSize int    `json:"chunk_size"`
}

// TuneKey fingerprints one AutoTune problem instance: the graph's shape and
// degree structure (a sampled Indptr hash — enough to distinguish datasets
// without hashing millions of edges), the tuned feature width, the kernel
// worker-pool size, and the machine. Any of these shifting changes which
// configuration wins, so each gets its own profile.
func TuneKey(g *graph.CSR, d int) string {
	h := fnv.New64a()
	put := func(v int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(int64(g.NumVertices))
	put(int64(g.NumEdges))
	// Sample up to 64 evenly spaced Indptr entries: a cheap structural
	// signature of the degree distribution and vertex ordering.
	n := len(g.Indptr)
	step := n / 64
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		put(int64(g.Indptr[i]))
	}
	if d <= 0 {
		d = 32
	}
	put(int64(d))
	put(int64(parallel.Workers()))
	machine := fmt.Sprintf("%s-%s-c%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	h.Write([]byte(machine))
	return fmt.Sprintf("tune-%s-%016x", machine, h.Sum64())
}

// AutoTuneCached is AutoTune behind a persisted profile store: a valid
// profile for this (graph, width, workers, machine) key under dir is
// returned without running a single sweep pass; a miss runs the sweep and
// writes the profile for the next process. dir is created if absent; any
// cache I/O failure degrades to a plain sweep (tuning must never be able to
// fail a training run), logged but not returned.
func AutoTuneCached(g *graph.CSR, d int, dir string) Options {
	if dir == "" {
		return AutoTune(g, d)
	}
	key := TuneKey(g, d)
	path := filepath.Join(dir, key+".json")
	if opt, ok := loadTuneProfile(path, key); ok {
		return opt
	}
	opt := AutoTune(g, d)
	writeTuneProfile(path, key, g, d, opt)
	return opt
}

func loadTuneProfile(path, key string) (Options, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Options{}, false // miss (including not-exists)
	}
	var p tuneProfile
	if err := json.Unmarshal(raw, &p); err != nil || p.Version != tuneProfileVersion || p.Key != key {
		log.Printf("spmm: ignoring stale/foreign tune profile %s", path)
		return Options{}, false
	}
	opt := Options{NumBlocks: p.NumBlocks, Reordered: p.Reordered, ChunkSize: p.ChunkSize}
	if p.Schedule == ScheduleStatic.String() {
		opt.Schedule = ScheduleStatic
	} else {
		opt.Schedule = ScheduleDynamic
	}
	if opt.NumBlocks < 1 {
		opt.NumBlocks = 1
	}
	if opt.ChunkSize < 1 {
		opt.ChunkSize = 64
	}
	return opt, true
}

func writeTuneProfile(path, key string, g *graph.CSR, d int, opt Options) {
	p := tuneProfile{
		Version:     tuneProfileVersion,
		Key:         key,
		NumVertices: g.NumVertices,
		NumEdges:    g.NumEdges,
		Width:       d,
		Workers:     parallel.Workers(),
		Machine:     fmt.Sprintf("%s-%s-c%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		TunedAt:     time.Now().UTC().Format(time.RFC3339),
		NumBlocks:   opt.NumBlocks,
		Schedule:    opt.Schedule.String(),
		Reordered:   opt.Reordered,
		ChunkSize:   opt.ChunkSize,
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Printf("spmm: cannot create tune cache dir: %v", err)
		return
	}
	raw, err := json.MarshalIndent(&p, "", "  ")
	if err != nil {
		log.Printf("spmm: cannot encode tune profile: %v", err)
		return
	}
	// Write-rename so a concurrently launched rank never reads a torn file.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		log.Printf("spmm: cannot write tune profile: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Printf("spmm: cannot publish tune profile: %v", err)
	}
}
