package tensor

import (
	"fmt"

	"distgnn/internal/quant"
)

// BF16Matrix is a dense row-major bfloat16 matrix: the storage-side twin of
// Matrix holding each element as a 16-bit word (top half of the float32 bit
// pattern, rounded to nearest even by quant.BF16Encode). Halving the element
// size halves the memory-bandwidth bill of streaming a feature matrix — the
// roofline limit of the aggregation primitive — at the cost of 8 explicit
// mantissa bits. Kernels that read it decode rows on load with
// quant.BF16Decode's bit shift and accumulate in float32.
type BF16Matrix struct {
	Rows, Cols int
	Data       []uint16
}

// NewBF16 returns a zeroed rows×cols bf16 matrix.
func NewBF16(rows, cols int) *BF16Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &BF16Matrix{Rows: rows, Cols: cols, Data: make([]uint16, rows*cols)}
}

// BF16FromMatrix rounds every element of m through bfloat16
// (round-to-nearest-even) into a fresh BF16Matrix. m is not modified.
func BF16FromMatrix(m *Matrix) *BF16Matrix {
	out := NewBF16(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = quant.BF16Encode(v)
	}
	return out
}

// Row returns the i-th row's packed words, sharing b's storage.
func (b *BF16Matrix) Row(i int) []uint16 {
	return b.Data[i*b.Cols : (i+1)*b.Cols]
}

// DecodeRow expands row i into dst (len ≥ Cols) and returns dst[:Cols].
// The decode is exact: a bf16 word denotes the float32 with that word as
// its top half, so no rounding happens on load.
func (b *BF16Matrix) DecodeRow(i int, dst []float32) []float32 {
	row := b.Row(i)
	dst = dst[:len(row)]
	for j, h := range row {
		dst[j] = quant.BF16Decode(h)
	}
	return dst
}

// At returns the element at (i, j) decoded to float32.
func (b *BF16Matrix) At(i, j int) float32 {
	return quant.BF16Decode(b.Data[i*b.Cols+j])
}

// Set rounds v through bf16 and assigns the element at (i, j).
func (b *BF16Matrix) Set(i, j int, v float32) {
	b.Data[i*b.Cols+j] = quant.BF16Encode(v)
}

// ToMatrix decodes the whole matrix into a fresh float32 Matrix — the
// values every bf16-reading kernel observes, so fp32 reference paths fed
// this matrix are value-identical to the bf16 path.
func (b *BF16Matrix) ToMatrix() *Matrix {
	out := New(b.Rows, b.Cols)
	for i, h := range b.Data {
		out.Data[i] = quant.BF16Decode(h)
	}
	return out
}

// SizeBytes returns the backing-store size: half a float32 Matrix's.
func (b *BF16Matrix) SizeBytes() int64 { return int64(len(b.Data)) * 2 }
