package tensor

import (
	"math"
	"math/rand"
	"testing"

	"distgnn/internal/quant"
)

func TestBF16RoundTripThroughMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(17, 9)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4)))
	}
	b := BF16FromMatrix(m)
	if b.Rows != m.Rows || b.Cols != m.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", b.Rows, b.Cols, m.Rows, m.Cols)
	}
	back := b.ToMatrix()
	for i, v := range m.Data {
		want := quant.BF16Decode(quant.BF16Encode(v))
		if math.Float32bits(back.Data[i]) != math.Float32bits(want) {
			t.Fatalf("element %d: %v decoded to %v, want %v", i, v, back.Data[i], want)
		}
	}
	// Decoding is exact: encoding the decoded matrix again is a fixpoint.
	again := BF16FromMatrix(back)
	for i := range b.Data {
		if again.Data[i] != b.Data[i] {
			t.Fatalf("element %d: re-encode not stable (%#x vs %#x)", i, again.Data[i], b.Data[i])
		}
	}
}

func TestBF16DecodeRowMatchesAt(t *testing.T) {
	b := NewBF16(4, 6)
	rng := rand.New(rand.NewSource(5))
	for i := range b.Data {
		b.Data[i] = uint16(rng.Intn(1 << 16))
	}
	// Exclude NaN patterns: At/DecodeRow must agree bitwise on everything
	// else (NaN payloads compare unequal under ==).
	for i := range b.Data {
		if v := quant.BF16Decode(b.Data[i]); math.IsNaN(float64(v)) {
			b.Data[i] = 0
		}
	}
	dst := make([]float32, b.Cols)
	for i := 0; i < b.Rows; i++ {
		row := b.DecodeRow(i, dst)
		if len(row) != b.Cols {
			t.Fatalf("row %d: decoded length %d", i, len(row))
		}
		for j := range row {
			if row[j] != b.At(i, j) {
				t.Fatalf("(%d,%d): DecodeRow %v != At %v", i, j, row[j], b.At(i, j))
			}
		}
	}
}

func TestBF16SetRoundsToNearestEven(t *testing.T) {
	b := NewBF16(1, 1)
	b.Set(0, 0, 1.00390625) // 1 + 2^-8: exactly between bf16 neighbors 1.0 and 1.0078125
	if got := b.At(0, 0); got != 1.0 {
		t.Fatalf("tie must round to even mantissa (1.0), got %v", got)
	}
	if b.SizeBytes() != 2 {
		t.Fatalf("SizeBytes = %d, want 2", b.SizeBytes())
	}
}
