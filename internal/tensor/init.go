package tensor

import (
	"math"
	"math/rand"
)

// GlorotUniform fills m with Glorot (Xavier) uniform values using rng.
// This is the initializer DGL's GraphSAGE layers use for weight matrices.
func GlorotUniform(m *Matrix, rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// RandomUniform fills m with uniform values in [lo, hi).
func RandomUniform(m *Matrix, rng *rand.Rand, lo, hi float32) {
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + rng.Float32()*span
	}
}

// RandomNormal fills m with N(0, std²) values.
func RandomNormal(m *Matrix, rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}
