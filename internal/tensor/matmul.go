package tensor

import (
	"fmt"

	"distgnn/internal/parallel"
)

// kernel block sizes for the tiled matmul. kc keeps a strip of B in L1/L2;
// mc rows of A are processed per parallel task.
const (
	matmulKC       = 256
	matmulRowChunk = 16
)

// MatMul computes C = A × B. A is m×k, B is k×n, C is m×n. C must not alias
// A or B. The multiply is parallelized over row blocks of A and tiled over
// the inner dimension so the active strip of B stays cache resident — the
// same blocking discipline the paper applies to the aggregation primitive.
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)×(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	c.Zero()
	gemmAcc(c, a, b)
}

// MatMulAcc computes C += A × B without zeroing C first.
func MatMulAcc(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)×(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	gemmAcc(c, a, b)
}

func gemmAcc(c, a, b *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	parallelRows(m, func(i0, i1 int) {
		for kk := 0; kk < k; kk += matmulKC {
			kEnd := min(kk+matmulKC, k)
			for i := i0; i < i1; i++ {
				aRow := a.Data[i*k : (i+1)*k]
				cRow := c.Data[i*n : (i+1)*n]
				for p := kk; p < kEnd; p++ {
					av := aRow[p]
					if av == 0 {
						continue
					}
					bRow := b.Data[p*n : (p+1)*n]
					saxpyRow(cRow, bRow, av)
				}
			}
		}
	})
}

// saxpyRow computes dst += alpha*src with 4-way unrolling so the compiler
// keeps the accumulators in registers. This is the scalar stand-in for the
// SIMD body LIBXSMM would JIT (Alg. 3 in the paper).
func saxpyRow(dst, src []float32, alpha float32) {
	n := len(src)
	_ = dst[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulTransA computes C = Aᵀ × B where A is k×m, B is k×n, C is m×n.
// This is the shape needed for weight gradients (Xᵀ·dY) during backprop.
func MatMulTransA(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch (%dx%d)ᵀ×(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	c.Zero()
	m, n, k := c.Rows, c.Cols, a.Rows
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// Parallelize over rows of C (columns of A) to avoid write conflicts.
	parallelRows(m, func(i0, i1 int) {
		for p := 0; p < k; p++ {
			aRow := a.Data[p*m : (p+1)*m]
			bRow := b.Data[p*n : (p+1)*n]
			for i := i0; i < i1; i++ {
				av := aRow[i]
				if av == 0 {
					continue
				}
				saxpyRow(c.Data[i*n:(i+1)*n], bRow, av)
			}
		}
	})
}

// MatMulTransB computes C = A × Bᵀ where A is m×k, B is n×k, C is m×n.
// This is the shape needed for input gradients (dY·Wᵀ) during backprop.
func MatMulTransB(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch (%dx%d)×(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	m, n, k := c.Rows, c.Cols, a.Cols
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			aRow := a.Data[i*k : (i+1)*k]
			cRow := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bRow := b.Data[j*k : (j+1)*k]
				cRow[j] = dot(aRow, bRow)
			}
		}
	})
}

func dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	_ = b[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// parallelRows splits [0, rows) into contiguous chunks of at least
// matmulRowChunk rows on the shared worker pool. Chunks are contiguous so
// each worker writes to disjoint cache lines of the output.
func parallelRows(rows int, fn func(i0, i1 int)) {
	parallel.For(rows, matmulRowChunk, fn)
}
