package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference O(mnk) triple loop used to validate the
// blocked/parallel kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for p := 0; p < a.Cols; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	RandomNormal(m, rng, 1)
	return m
}

func TestMatMulSmallExact(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	MatMul(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul: got %v want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 17, 17)
	eye := New(17, 17)
	for i := 0; i < 17; i++ {
		eye.Set(i, i, 1)
	}
	c := New(17, 17)
	MatMul(c, a, eye)
	if d := c.MaxAbsDiff(a); d > 1e-6 {
		t.Fatalf("A×I != A, max diff %v", d)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {5, 7, 3}, {64, 33, 17}, {130, 300, 40}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		c := New(m, n)
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		if d := c.MaxAbsDiff(want); d > 1e-3 {
			t.Fatalf("dims %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulAccAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 8, 8)
	b := randomMatrix(rng, 8, 8)
	c := New(8, 8)
	MatMul(c, a, b)
	twice := c.Clone()
	MatMulAcc(twice, a, b)
	c.Scale(2)
	if d := twice.MaxAbsDiff(c); d > 1e-4 {
		t.Fatalf("MatMulAcc: max diff %v", d)
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 40, 13) // k×m
	b := randomMatrix(rng, 40, 21) // k×n
	c := New(13, 21)
	MatMulTransA(c, a, b)
	want := New(13, 21)
	MatMul(want, a.Transpose(), b)
	if d := c.MaxAbsDiff(want); d > 1e-3 {
		t.Fatalf("MatMulTransA: max diff %v", d)
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 23, 31) // m×k
	b := randomMatrix(rng, 19, 31) // n×k
	c := New(23, 19)
	MatMulTransB(c, a, b)
	want := New(23, 19)
	MatMul(want, a, b.Transpose())
	if d := c.MaxAbsDiff(want); d > 1e-3 {
		t.Fatalf("MatMulTransB: max diff %v", d)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestMatMulZeroDims(t *testing.T) {
	c := New(0, 5)
	MatMul(c, New(0, 3), New(3, 5))
	c2 := New(4, 0)
	MatMul(c2, New(4, 3), New(3, 0))
	// Must not panic; nothing to verify beyond that.
}

func TestMatMulAssociativityWithIdentityProperty(t *testing.T) {
	// Property: (A×B) row sums equal A×(B row-sums-vector) when B has a
	// column of ones appended — here simplified as distributivity:
	// A×(B+C) == A×B + A×C.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 9, 6)
		b := randomMatrix(rng, 6, 7)
		cc := randomMatrix(rng, 6, 7)
		sum := b.Clone()
		sum.Add(cc)
		left := New(9, 7)
		MatMul(left, a, sum)
		right1 := New(9, 7)
		MatMul(right1, a, b)
		right2 := New(9, 7)
		MatMul(right2, a, cc)
		right1.Add(right2)
		return left.MaxAbsDiff(right1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	c := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, x, y)
	}
}
