// Package tensor provides the dense linear-algebra substrate that DistGNN's
// neural-network layers are built on. It plays the role PyTorch's dense
// tensor library plays for DGL: row-major float32 matrices with the handful
// of BLAS-like kernels GraphSAGE training needs (matmul, transposed matmul,
// elementwise ops, row reductions, softmax).
//
// Matrices are stored as a flat []float32 in row-major order so that a row —
// a vertex feature vector — is a contiguous, cache-friendly block, matching
// the access pattern the aggregation primitive in package spmm relies on.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix. Rows typically index vertices
// and columns index features. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. The caller
// must not alias data in ways that violate the matrix's invariants.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns the i-th row as a slice sharing m's storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

// SameShape reports whether m and other have identical dimensions.
func (m *Matrix) SameShape(other *Matrix) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if !m.SameShape(other) {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// Add computes m += other elementwise.
func (m *Matrix) Add(other *Matrix) {
	m.mustSameShape(other)
	axpy(m.Data, other.Data, 1)
}

// Sub computes m -= other elementwise.
func (m *Matrix) Sub(other *Matrix) {
	m.mustSameShape(other)
	axpy(m.Data, other.Data, -1)
}

// AddScaled computes m += alpha*other elementwise.
func (m *Matrix) AddScaled(other *Matrix, alpha float32) {
	m.mustSameShape(other)
	axpy(m.Data, other.Data, alpha)
}

func axpy(dst, src []float32, alpha float32) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// MulElem computes m *= other elementwise (Hadamard product).
func (m *Matrix) MulElem(other *Matrix) {
	m.mustSameShape(other)
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// ScaleRows multiplies row i by scale[i]. Used for the GCN in-degree
// normalization post-processing step described in §6.1 of the paper.
func (m *Matrix) ScaleRows(scale []float32) {
	if len(scale) != m.Rows {
		panic(fmt.Sprintf("tensor: scale length %d != rows %d", len(scale), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := scale[i]
		for j := range row {
			row[j] *= s
		}
	}
}

// AddRowVector adds vec to every row of m (broadcast bias add).
func (m *Matrix) AddRowVector(vec []float32) {
	if len(vec) != m.Cols {
		panic(fmt.Sprintf("tensor: vector length %d != cols %d", len(vec), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range vec {
			row[j] += v
		}
	}
}

// ColSums accumulates the sum of every column into out (len == Cols).
// Used for bias gradients.
func (m *Matrix) ColSums(out []float32) {
	if len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: out length %d != cols %d", len(out), m.Cols))
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
}

// Transpose returns a new matrix that is mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the maximum absolute elementwise difference between m
// and other. Test helper for tolerance comparisons.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	m.mustSameShape(other)
	var worst float64
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(other.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// ArgmaxRows writes the index of the maximum element of each row into out
// (len == Rows). Ties resolve to the lowest index. Used for predictions.
func (m *Matrix) ArgmaxRows(out []int) {
	if len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: out length %d != rows %d", len(out), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestJ := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = bestJ
	}
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d, |.|=%.4g)", m.Rows, m.Cols, m.Norm2())
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
