package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestFromSliceNoCopy(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	data[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("FromSlice must share storage")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, []float32{1, 2})
}

func TestRowAliasesStorage(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row must alias storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone must not share storage")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Add: got %v want %v", a.Data, want)
		}
	}
	a.Sub(b)
	for i, w := range []float32{1, 2, 3, 4} {
		if a.Data[i] != w {
			t.Fatalf("Sub: element %d = %v want %v", i, a.Data[i], w)
		}
	}
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatalf("Scale: got %v", a.At(1, 1))
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 1, 1})
	b := FromSlice(1, 3, []float32{2, 4, 6})
	a.AddScaled(b, 0.5)
	want := []float32{2, 3, 4}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("AddScaled: got %v want %v", a.Data, want)
		}
	}
}

func TestMulElem(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	a.MulElem(b)
	want := []float32{4, 10, 18}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("MulElem: got %v want %v", a.Data, want)
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestScaleRows(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	m.ScaleRows([]float32{10, 100})
	want := []float32{10, 20, 300, 400}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("ScaleRows: got %v want %v", m.Data, want)
		}
	}
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	m.AddRowVector([]float32{1, 2, 3})
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != float32(j+1) {
				t.Fatalf("AddRowVector: (%d,%d)=%v", i, j, m.At(i, j))
			}
		}
	}
}

func TestColSums(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 10, 2, 20, 3, 30})
	out := make([]float32, 2)
	m.ColSums(out)
	if out[0] != 6 || out[1] != 60 {
		t.Fatalf("ColSums: got %v", out)
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromSlice(3, 3, []float32{
		0, 1, 0,
		5, 2, 9,
		-1, -3, -2,
	})
	out := make([]int, 3)
	m.ArgmaxRows(out)
	want := []int{1, 2, 0}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("ArgmaxRows: got %v want %v", out, want)
		}
	}
}

func TestArgmaxRowsTieBreaksLow(t *testing.T) {
	m := FromSlice(1, 3, []float32{7, 7, 7})
	out := make([]int, 1)
	m.ArgmaxRows(out)
	if out[0] != 0 {
		t.Fatalf("tie should resolve to index 0, got %d", out[0])
	}
}

func TestNorm2(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if math.Abs(m.Norm2()-5) > 1e-9 {
		t.Fatalf("Norm2: got %v", m.Norm2())
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(8, 11)
	RandomNormal(m, rng, 3)
	out := New(8, 11)
	SoftmaxRows(out, m)
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range out.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxRowsStableWithLargeValues(t *testing.T) {
	m := FromSlice(1, 3, []float32{1000, 1001, 1002})
	out := New(1, 3)
	SoftmaxRows(out, m)
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", out.Data)
		}
	}
	if out.At(0, 2) <= out.At(0, 1) {
		t.Fatal("softmax must be monotone in logits")
	}
}

func TestSoftmaxPreservesArgmax(t *testing.T) {
	f := func(a, b, c float32) bool {
		// Bound inputs so float32 exp stays finite.
		clamp := func(x float32) float32 {
			if x > 50 {
				return 50
			}
			if x < -50 {
				return -50
			}
			return x
		}
		m := FromSlice(1, 3, []float32{clamp(a), clamp(b), clamp(c)})
		out := New(1, 3)
		SoftmaxRows(out, m)
		in, sm := make([]int, 1), make([]int, 1)
		m.ArgmaxRows(in)
		out.ArgmaxRows(sm)
		return in[0] == sm[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotUniformWithinLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(64, 32)
	GlorotUniform(m, rng)
	limit := math.Sqrt(6.0 / float64(64+32))
	for _, v := range m.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("value %v exceeds Glorot limit %v", v, limit)
		}
	}
	// Should not be all zeros.
	if m.Norm2() == 0 {
		t.Fatal("Glorot init produced all zeros")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{1, 2.5, 2})
	if d := a.MaxAbsDiff(b); math.Abs(d-1) > 1e-9 {
		t.Fatalf("MaxAbsDiff: got %v want 1", d)
	}
}
