package tensor

import "math"

// SoftmaxRows computes out[i] = softmax(m[i]) row-wise with the usual
// max-subtraction for numerical stability. out may alias m.
func SoftmaxRows(out, m *Matrix) {
	m.mustSameShape(out)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		maxV := src[0]
		for _, v := range src[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
}

// LogSumExpRow returns log(Σ exp(row)) computed stably.
func LogSumExpRow(row []float32) float64 {
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxV))
	}
	return float64(maxV) + math.Log(sum)
}
