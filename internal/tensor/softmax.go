package tensor

import (
	"math"

	"distgnn/internal/parallel"
)

// softmaxRowChunk keeps per-task work large enough that the pooled fan-out
// pays for itself — softmax rows are short compared to matmul row strips.
const softmaxRowChunk = 64

// SoftmaxRows computes out[i] = softmax(m[i]) row-wise with the usual
// max-subtraction for numerical stability. out may alias m. Rows are
// independent, so the loop is statically chunked on the shared worker pool.
func SoftmaxRows(out, m *Matrix) {
	m.mustSameShape(out)
	parallel.For(m.Rows, softmaxRowChunk, func(i0, i1 int) {
		softmaxRowRange(out, m, i0, i1)
	})
}

func softmaxRowRange(out, m *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		maxV := src[0]
		for _, v := range src[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range src {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
}

// LogSumExpRow returns log(Σ exp(row)) computed stably.
func LogSumExpRow(row []float32) float64 {
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxV))
	}
	return float64(maxV) + math.Log(sum)
}
