package train

import (
	"testing"

	"distgnn/internal/nn"
	"distgnn/internal/quant"
)

// snapshotParams flattens rank 0's parameter values (not gradients).
func snapshotParams(t *testing.T, s *distState, rank int) []float32 {
	t.Helper()
	params := s.ranks[rank].model.Params()
	buf := make([]float32, nn.TotalElements(params))
	nn.FlattenParamsInto(buf, params, false)
	return buf
}

// TestCDRSConformsToCDR is the cd-rs conformance harness: the overlapped
// algorithm must produce bit-identical parameters to cd-r at every epoch
// for the same seed — overlap is a scheduling and accounting change, never
// an arithmetic one. Checked across 2/4/8 simulated sockets, with overlap
// both live and artificially forced to complete synchronously, in fp32 and
// through the bf16 packed wire path.
func TestCDRSConformsToCDR(t *testing.T) {
	ds := testDataset(t)
	const epochs, delay = 7, 2
	for _, tc := range []struct {
		sockets   int
		forceSync bool
		prec      quant.Precision
	}{
		{2, false, quant.FP32},
		{4, false, quant.FP32},
		{8, false, quant.FP32},
		{2, true, quant.FP32},
		{4, true, quant.FP32},
		{8, true, quant.FP32},
		{4, false, quant.BF16},
		{4, true, quant.FP16},
	} {
		base := DistConfig{
			Model: smallModel(), NumPartitions: tc.sockets,
			Delay: delay, Epochs: epochs, LR: 0.05, UseAdam: true, Seed: 9,
			CommPrecision: tc.prec,
		}
		refCfg := base
		refCfg.Algo = AlgoCDR
		ref, err := newDistState(ds, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		ovlCfg := base
		ovlCfg.Algo = AlgoCDRS
		ovlCfg.ForceSyncOverlap = tc.forceSync
		ovl, err := newDistState(ds, ovlCfg)
		if err != nil {
			t.Fatal(err)
		}

		for e := 0; e < epochs; e++ {
			refStat := ref.runEpoch(e)
			ovlStat := ovl.runEpoch(e)
			if refStat.Loss != ovlStat.Loss {
				t.Fatalf("k=%d force=%v %v epoch %d: loss %v (cd-r) vs %v (cd-rs)",
					tc.sockets, tc.forceSync, tc.prec, e, refStat.Loss, ovlStat.Loss)
			}
			for rank := 0; rank < tc.sockets; rank++ {
				a := snapshotParams(t, ref, rank)
				b := snapshotParams(t, ovl, rank)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("k=%d force=%v %v epoch %d rank %d: param[%d] %v (cd-r) vs %v (cd-rs)",
							tc.sockets, tc.forceSync, tc.prec, e, rank, i, a[i], b[i])
					}
				}
			}
		}
		refTrain, refTest := ref.evaluate()
		ovlTrain, ovlTest := ovl.evaluate()
		if refTrain != ovlTrain || refTest != ovlTest {
			t.Fatalf("k=%d force=%v %v: eval %v/%v (cd-r) vs %v/%v (cd-rs)",
				tc.sockets, tc.forceSync, tc.prec, refTrain, refTest, ovlTrain, ovlTest)
		}
	}
}

// TestCDRDelay1ConformsToItself pins the analogous relation the suite
// already relies on for the delay ladder: driving the state epoch by epoch
// is observationally identical to the packaged Distributed loop, so the
// conformance harness above really exercises the production path.
func TestStatewiseDriverMatchesDistributed(t *testing.T) {
	ds := testDataset(t)
	cfg := DistConfig{
		Model: smallModel(), NumPartitions: 4, Algo: AlgoCDRS, Delay: 2,
		Epochs: 5, LR: 0.05, UseAdam: true, Seed: 9,
	}
	packaged, err := Distributed(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newDistState(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < cfg.Epochs; e++ {
		st := s.runEpoch(e)
		if st.Loss != packaged.Epochs[e].Loss {
			t.Fatalf("epoch %d: driver loss %v vs Distributed %v", e, st.Loss, packaged.Epochs[e].Loss)
		}
	}
	_, testAcc := s.evaluate()
	if testAcc != packaged.TestAcc {
		t.Fatalf("driver acc %v vs Distributed %v", testAcc, packaged.TestAcc)
	}
}

// TestCDRSHidesNetworkBehindCompute is the §6.3 headline: at equal delay,
// cd-rs's simulated epoch time must fall strictly below cd-r's, because the
// α+bytes/β term rides under compute instead of blocking the epoch
// boundary. Forcing the overlap synchronous must give the hiding back.
func TestCDRSHidesNetworkBehindCompute(t *testing.T) {
	ds := testDataset(t)
	run := func(algo Algorithm, force bool) *DistResult {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: algo, Delay: 3,
			Epochs: 10, LR: 0.05, Seed: 2, ForceSyncOverlap: force,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cdr := run(AlgoCDR, false)
	cdrs := run(AlgoCDRS, false)
	forced := run(AlgoCDRS, true)

	lo, hi := 6, 10 // steady state: delay pipeline full
	et := func(r *DistResult) float64 { return r.AvgEpochSeconds(lo, hi) }
	if !(et(cdrs) < et(cdr)) {
		t.Fatalf("cd-rs epoch %v must be strictly below cd-r %v at equal delay",
			et(cdrs), et(cdr))
	}
	for e := lo; e < hi; e++ {
		if cdrs.Epochs[e].ExposedNet != 0 {
			t.Fatalf("epoch %d: compute window dwarfs the transfers, exposed %v",
				e, cdrs.Epochs[e].ExposedNet)
		}
		if forced.Epochs[e].ExposedNet <= 0 {
			t.Fatalf("epoch %d: forced-sync cd-rs must expose network time", e)
		}
	}
	if !(et(forced) > et(cdrs)) {
		t.Fatalf("forced-sync cd-rs %v must cost more than overlapped %v",
			et(forced), et(cdrs))
	}
	// Both deliver the same math: identical losses throughout.
	for e := range cdr.Epochs {
		if cdr.Epochs[e].Loss != cdrs.Epochs[e].Loss {
			t.Fatalf("epoch %d: cd-r loss %v vs cd-rs %v", e, cdr.Epochs[e].Loss, cdrs.Epochs[e].Loss)
		}
	}
}
