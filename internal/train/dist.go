package train

import (
	"fmt"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/parallel"
	"distgnn/internal/partition"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// Algorithm selects one of the distributed aggregation strategies of §5.3
// of the paper.
type Algorithm string

const (
	// Algo0C performs only local aggregation — no communication. Fastest;
	// the scaling roofline.
	Algo0C Algorithm = "0c"
	// AlgoCD0 synchronously exchanges partial aggregates of split vertices
	// every layer, giving every vertex its complete neighborhood.
	AlgoCD0 Algorithm = "cd-0"
	// AlgoCDR delays partial-aggregate exchange by Delay epochs and spreads
	// it over Delay bins of split vertices (DRPA, Alg. 4). The exchange
	// itself is a blocking AlltoAllV at the epoch boundary, so its network
	// term is exposed — smaller than cd-0's (1/Delay of the volume per
	// epoch) but still on the critical path.
	AlgoCDR Algorithm = "cd-r"
	// AlgoCDRS is cd-r with the exchange overlapped behind compute via
	// nonblocking Isend/Irecv (the paper's full DRPA, §6.3): each bin's
	// partial-aggregate sends are posted as soon as a layer's aggregation
	// produces them, completions are drained at layer boundaries, and only
	// the un-hidden remainder of the α+bytes/β network term is charged —
	// identical arithmetic to cd-r, network time hidden.
	AlgoCDRS Algorithm = "cd-rs"
)

// DistConfig configures a distributed full-batch training run.
type DistConfig struct {
	Model         model.Config
	NumPartitions int
	Algo          Algorithm
	// Delay is r of cd-r: partial aggregates sent in epoch e are consumed
	// in epoch e+r. The paper uses r=5 throughout. Ignored otherwise.
	Delay       int
	Epochs      int
	LR          float64
	WeightDecay float64
	UseAdam     bool
	// Partitioner defaults to Libra.
	Partitioner partition.Partitioner
	Seed        int64
	// Compute and Net translate the executed work and traffic into
	// simulated per-socket wall clock (Fig. 5/6); zero values get defaults.
	Compute comm.ComputeModel
	Net     *comm.CostModel
	// CommPrecision selects the wire format for partial-aggregate
	// exchanges (the §7 future-work extension): FP32 (default), BF16 or
	// FP16. Low-precision formats halve the network volume; values are
	// rounded through the format so the accuracy impact is real. For cd-rs
	// the pack/unpack runs inside the nonblocking request path, off the
	// compute-critical path.
	CommPrecision quant.Precision
	// ForceSyncOverlap (cd-rs only) charges every nonblocking transfer as
	// if it completed synchronously — overlap disabled in the cost model
	// while the arithmetic stays untouched. The conformance harness uses it
	// to pin cd-rs to cd-r's cost shape and bit-identical parameters.
	ForceSyncOverlap bool
	// Workers sizes the process-wide kernel worker pool shared by all
	// simulated ranks — the OMP_NUM_THREADS knob. 0 keeps the current pool.
	Workers int
	// Transport selects the comm fabric. Nil (the default) runs every rank
	// as a goroutine in this process over the in-process mailbox. A
	// single-rank endpoint (e.g. comm.TCPTransport) turns this process into
	// exactly one rank of a true multi-process run: the trainer executes
	// only that rank and carries the cross-rank reductions the in-process
	// driver does in shared memory (gradient AllReduce, loss sum, per-phase
	// timing max) over the fabric instead — with identical rank-ordered
	// float reductions, so parameters are bit-identical across transports.
	// Every process must pass identical DistConfig and dataset; Size() must
	// equal NumPartitions.
	Transport comm.Transport
}

// DistEpochStat is one epoch of simulated-cluster timing plus the training
// loss. Times are seconds on the modeled cluster: LAT/RAT split per §6.3
// (LAT = forward local aggregation; RAT = remote aggregation including
// pre/post processing plus the exposed network time — the full term for
// the blocking cd-0/cd-r exchanges, only the un-hidden remainder for
// cd-rs).
type DistEpochStat struct {
	Loss      float64
	LAT       float64 // forward local aggregation, max across ranks
	RAT       float64 // forward remote aggregation, max across ranks
	BwdAgg    float64 // backward aggregation
	MLP       float64 // dense layers fwd+bwd
	ParamSync float64
	Epoch     float64 // total simulated epoch time
	// ExposedNet is the part of cd-rs's overlapped network traffic that
	// compute failed to hide (max across ranks, already included in RAT).
	// Zero for the blocking algorithms, whose full network term is exposed.
	ExposedNet float64
}

// DistResult is the outcome of one distributed training run.
type DistResult struct {
	Epochs      []DistEpochStat
	TrainAcc    float64
	TestAcc     float64
	Replication float64
	SplitFrac   []float64 // per-rank split-vertex fraction
	EdgeBalance float64
	NumParams   int
}

// AvgEpochSeconds averages simulated epoch time over epochs [lo, hi),
// clamped — the paper averages epochs 1–10 for 0c/cd-0 and 10–20 for cd-r.
func (r *DistResult) AvgEpochSeconds(lo, hi int) float64 {
	if hi > len(r.Epochs) {
		hi = len(r.Epochs)
	}
	if lo >= hi {
		return 0
	}
	var s float64
	for _, e := range r.Epochs[lo:hi] {
		s += e.Epoch
	}
	return s / float64(hi-lo)
}

// AvgLATRAT averages the forward local/remote aggregation split over the
// same window (Fig. 6).
func (r *DistResult) AvgLATRAT(lo, hi int) (lat, rat float64) {
	if hi > len(r.Epochs) {
		hi = len(r.Epochs)
	}
	if lo >= hi {
		return 0, 0
	}
	for _, e := range r.Epochs[lo:hi] {
		lat += e.LAT
		rat += e.RAT
	}
	n := float64(hi - lo)
	return lat / n, rat / n
}

// gradScratch recycles the flattened-gradient buffers used for the
// per-epoch parameter AllReduce — one full model's worth per rank per epoch
// before this arena existed.
var gradScratch parallel.Scratch[float32]

// rankCtx is the per-rank training state.
type rankCtx struct {
	id     int
	world  *comm.World
	cfg    *DistConfig
	part   *partition.Part
	plan   *xplan
	model  *model.GraphSAGE
	x      *tensor.Matrix
	labels []int32
	// owned* hold local IDs of vertices this rank owns (root clone or only
	// clone) — each global vertex is owned exactly once across ranks.
	ownedTrain []int32
	ownedTest  []int32

	// aggregate widths per layer (input dim of each SAGE layer).
	aggDims []int

	// cd-r / cd-rs state.
	captures  []*tensor.Matrix // fresh local aggregates per layer (split rows only)
	remoteAdd []*tensor.Matrix // stale leaf-partial sums (root rows)
	staleTot  []*tensor.Matrix // stale totals from roots (leaf rows)
	staleMask []bool           // rows of staleTot that are valid
	// delivery queues keyed by epoch.
	pendingPartials map[int][]delivery
	pendingTotals   map[int][]delivery

	// cd-rs nonblocking state (overlap.go).
	pendingAReqs   []pendReq        // phase-A receives in flight this epoch
	pendingTotReqs map[int][]totReq // phase-B receives keyed by due epoch

	// per-epoch communication counters.
	gatherBytes int64
	netBytes    int64
	netMsgs     int64
	exposedNet  float64 // cd-rs: un-hidden network seconds this epoch

	opt nn.Optimizer
}

// delivery is a received buffer waiting out its cd-r delay.
type delivery struct {
	peer int
	bin  int
	// layer is the single layer a cd-rs phase-A payload carries; allLayers
	// marks cd-r's concatenated-across-layers wire format.
	layer int
	data  []float32
}

// distState is a fully initialized distributed run: validated config,
// partitioning, per-rank contexts and communicator. Distributed drives it
// epoch by epoch; the cd-rs conformance harness drives it manually so it
// can snapshot parameters between epochs.
type distState struct {
	cfg   DistConfig
	pt    *partition.Partitioning
	ranks []*rankCtx
	world *comm.World
	// local is comm.AllRanks when this process hosts every rank; otherwise
	// the single rank this process runs (remote.go drives that mode).
	local       int
	lossParts   []float64
	globalTrain int
	testIdx     []int32
}

// hostRank returns a rank context this process actually hosts — rank 0
// in-process, the local rank on a transport endpoint. Model-replica-wide
// values (parameter counts) are identical on every rank.
func (s *distState) hostRank() *rankCtx {
	if s.local != comm.AllRanks {
		return s.ranks[s.local]
	}
	return s.ranks[0]
}

// newDistState validates and defaults cfg, partitions the graph, and builds
// every rank's local state.
func newDistState(ds *datasets.Dataset, cfg DistConfig) (*distState, error) {
	if cfg.NumPartitions < 1 {
		return nil, fmt.Errorf("train: NumPartitions must be ≥1, got %d", cfg.NumPartitions)
	}
	if cfg.Workers > 0 {
		parallel.Configure(parallel.Config{Workers: cfg.Workers})
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: Epochs must be positive")
	}
	switch cfg.Algo {
	case Algo0C, AlgoCD0:
	case AlgoCDR, AlgoCDRS:
		if cfg.Delay < 1 {
			return nil, fmt.Errorf("train: %s requires Delay ≥ 1, got %d", cfg.Algo, cfg.Delay)
		}
	default:
		return nil, fmt.Errorf("train: unknown algorithm %q", cfg.Algo)
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = partition.Libra{Seed: cfg.Seed}
	}
	if cfg.Compute == (comm.ComputeModel{}) {
		cfg.Compute = comm.DefaultComputeModel()
	}
	if cfg.Net == nil {
		cfg.Net = comm.DefaultCostModel(cfg.NumPartitions)
	}
	mc := cfg.Model
	if mc.InDim == 0 {
		mc.InDim = ds.Features.Cols
	}
	if mc.OutDim == 0 {
		mc.OutDim = ds.NumClasses
	}
	if mc.NumLayers == 0 {
		mc.NumLayers = 3
	}
	if mc.Hidden == 0 {
		mc.Hidden = 256
	}
	// Dropout masks cannot be kept coherent across clones; distributed
	// training runs without dropout (the paper's GCN-aggregator GraphSAGE
	// configuration likewise).
	mc.DropoutP = 0
	cfg.Model = mc

	local := comm.AllRanks
	if cfg.Transport != nil {
		if cfg.Transport.Size() != cfg.NumPartitions {
			return nil, fmt.Errorf("train: transport world size %d != NumPartitions %d",
				cfg.Transport.Size(), cfg.NumPartitions)
		}
		local = cfg.Transport.Self()
		if local == comm.AllRanks {
			return nil, fmt.Errorf("train: Transport must be a single-rank endpoint; leave nil for the in-process fabric")
		}
	}

	pt, err := partition.Partition(ds.G, cfg.Partitioner, cfg.NumPartitions, cfg.Seed)
	if err != nil {
		return nil, err
	}
	bins := 1
	if cfg.Algo == AlgoCDR || cfg.Algo == AlgoCDRS {
		bins = cfg.Delay
	}
	plans := buildXPlans(pt, bins)

	var world *comm.World
	if local == comm.AllRanks {
		world = comm.NewWorld(cfg.NumPartitions)
	} else {
		world = comm.NewWorldTransport(cfg.Transport)
	}
	ranks, err := setupRanks(ds, &cfg, pt, plans, world, local)
	if err != nil {
		return nil, err
	}
	world.ConfigureAsync(cfg.Net, cfg.ForceSyncOverlap)
	return &distState{
		cfg: cfg, pt: pt, ranks: ranks, world: world, local: local,
		lossParts:   make([]float64, cfg.NumPartitions),
		globalTrain: len(ds.TrainIdx),
		testIdx:     ds.TestIdx,
	}, nil
}

// runEpoch executes one full training epoch across all ranks and returns
// its simulated timing plus the global training loss.
func (s *distState) runEpoch(epoch int) DistEpochStat {
	if s.local != comm.AllRanks {
		return s.runEpochRemote(epoch)
	}
	cfg := &s.cfg
	if cfg.Algo == AlgoCDRS {
		// The previous epoch's gradient AllReduce is a barrier: align the
		// simulated clocks so overlap windows measure within-epoch hiding,
		// not accumulated inter-rank drift.
		cfg.Net.SyncClocks()
	}
	s.world.Run(func(rank int) {
		s.lossParts[rank] = s.trainEpochRank(s.ranks[rank], epoch)
	})

	st := timeEpoch(cfg, s.ranks)
	var lsum float64
	for _, l := range s.lossParts {
		lsum += l
	}
	if s.globalTrain > 0 {
		st.Loss = lsum / float64(s.globalTrain)
	}
	return st
}

// trainEpochRank executes one rank's epoch body: forward, loss scaling,
// backward, the algorithm's exchange, the gradient AllReduce, and the
// optimizer step. BOTH epoch drivers — the in-process world and the
// multi-process transport endpoint — run exactly this function, so the
// cross-transport bit-identity invariant cannot drift between them.
// Returns the rank's share of the global loss sum.
func (s *distState) trainEpochRank(r *rankCtx, epoch int) float64 {
	cfg := &s.cfg
	r.resetCounters()
	r.installHooks(epoch)

	logits := r.model.Forward(r.x, true)
	loss, dlogits := nn.MaskedCrossEntropy(logits, r.labels, r.ownedTrain)
	// Re-weight the local mean into the global mean's share.
	scale := float32(0)
	if s.globalTrain > 0 {
		scale = float32(len(r.ownedTrain)) / float32(s.globalTrain)
	}
	dlogits.Scale(scale)
	lossPart := loss * float64(len(r.ownedTrain))

	params := r.model.Params()
	nn.ZeroGrads(params)
	r.model.Backward(dlogits)

	switch cfg.Algo {
	case AlgoCDR:
		r.delayedExchange(epoch)
	case AlgoCDRS:
		r.overlappedExchange(epoch)
	}

	// Parameter gradient AllReduce (sum of per-rank global-mean
	// shares = global mean) keeps all model replicas identical. The
	// flattened buffer is recycled across epochs and ranks.
	gbuf := gradScratch.Get(nn.TotalElements(params))
	nn.FlattenParamsInto(gbuf, params, true)
	s.world.AllReduceSum(r.id, gbuf)
	nn.UnflattenParams(params, gbuf, true)
	gradScratch.Put(gbuf)
	r.optStep()
	return lossPart
}

// evalRank scores one rank's owned vertices, returning correct-prediction
// counts. Shared by both evaluate drivers for the same reason as
// trainEpochRank.
func (s *distState) evalRank(r *rankCtx) (trainC, testC float64) {
	r.installHooks(s.cfg.Epochs) // stale buffers (cd-r/cd-rs) / sync exchange (cd-0) still apply
	logits := r.model.Forward(r.x, false)
	pred := make([]int, logits.Rows)
	logits.ArgmaxRows(pred)
	for _, v := range r.ownedTrain {
		if int32(pred[v]) == r.labels[v] {
			trainC++
		}
	}
	for _, v := range r.ownedTest {
		if int32(pred[v]) == r.labels[v] {
			testC++
		}
	}
	return trainC, testC
}

// evaluate scores every rank's owned vertices and returns global train/test
// accuracy.
func (s *distState) evaluate() (trainAcc, testAcc float64) {
	if s.local != comm.AllRanks {
		return s.evaluateRemote()
	}
	accs := make([][2]float64, s.cfg.NumPartitions) // {trainCorrect, testCorrect}
	s.world.Run(func(rank int) {
		trainC, testC := s.evalRank(s.ranks[rank])
		accs[rank] = [2]float64{trainC, testC}
	})
	var trainC, testC float64
	for _, a := range accs {
		trainC += a[0]
		testC += a[1]
	}
	if s.globalTrain > 0 {
		trainAcc = trainC / float64(s.globalTrain)
	}
	if len(s.testIdx) > 0 {
		testAcc = testC / float64(len(s.testIdx))
	}
	return trainAcc, testAcc
}

// Distributed trains GraphSAGE over NumPartitions simulated sockets and
// returns global accuracy plus per-epoch simulated timing.
func Distributed(ds *datasets.Dataset, cfg DistConfig) (*DistResult, error) {
	s, err := newDistState(ds, cfg)
	if err != nil {
		return nil, err
	}
	res := &DistResult{
		Replication: s.pt.ReplicationFactor(),
		SplitFrac:   s.pt.SplitVertexFraction(),
		EdgeBalance: s.pt.EdgeBalance(),
		NumParams:   s.hostRank().model.NumParams(),
		Epochs:      make([]DistEpochStat, s.cfg.Epochs),
	}
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		res.Epochs[epoch] = s.runEpoch(epoch)
	}
	res.TrainAcc, res.TestAcc = s.evaluate()
	return res, nil
}
