package train

import (
	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/partition"
	"distgnn/internal/tensor"
)

// setupRanks builds every rank's local dataset slice, model replica,
// optimizer and cd-r buffers. All replicas share one model seed so initial
// weights are identical, and the gradient AllReduce keeps them identical.
// When local != comm.AllRanks — a multi-process run where this process is
// exactly one rank — only that rank's context is built (the rest stay
// nil); the global structures (vertex ownership, partitioning, exchange
// plans) are still derived identically in every process, which is what
// keeps the fleet's replicas in lockstep.
func setupRanks(ds *datasets.Dataset, cfg *DistConfig, pt *partition.Partitioning,
	plans []*xplan, world *comm.World, local int) ([]*rankCtx, error) {
	k := cfg.NumPartitions

	// Owner of each global vertex: root clone of split vertices, the only
	// clone otherwise.
	owner := make([]int32, ds.G.NumVertices)
	for v := range owner {
		owner[v] = -1
	}
	for p := 0; p < k; p++ {
		for _, g := range pt.Parts[p].GlobalID {
			if owner[g] == -1 {
				owner[g] = int32(p)
			}
		}
	}
	for _, sv := range pt.Splits {
		owner[sv.Global] = sv.Clones[0].Part
	}

	globalDeg := ds.G.InDegrees()
	globalNorm := model.NormFromDegrees(globalDeg)

	// Aggregate input widths per layer.
	aggDims := make([]int, cfg.Model.NumLayers)
	for l := range aggDims {
		if l == 0 {
			aggDims[l] = cfg.Model.InDim
		} else {
			aggDims[l] = cfg.Model.Hidden
		}
	}

	ranks := make([]*rankCtx, k)
	for p := 0; p < k; p++ {
		if local != comm.AllRanks && p != local {
			continue
		}
		part := pt.Parts[p]
		nLocal := part.NumLocal()

		// Local feature/label slices.
		x := tensor.New(nLocal, ds.Features.Cols)
		labels := make([]int32, nLocal)
		norm := make([]float32, nLocal)
		for local, g := range part.GlobalID {
			copy(x.Row(local), ds.Features.Row(int(g)))
			labels[local] = ds.Labels[g]
			if cfg.Algo == Algo0C {
				// 0c vertices only ever see their local partial
				// neighborhood; normalize by the local degree.
				norm[local] = 1 / float32(1+part.G.InDegree(local))
			} else {
				norm[local] = globalNorm[g]
			}
		}

		m, err := model.New(part.G, cfg.Model, norm)
		if err != nil {
			return nil, err
		}

		r := &rankCtx{
			id:      p,
			world:   world,
			cfg:     cfg,
			part:    part,
			plan:    plans[p],
			model:   m,
			x:       x,
			labels:  labels,
			aggDims: aggDims,
		}

		// Owned masks in local IDs.
		for _, g := range ds.TrainIdx {
			if owner[g] == int32(p) {
				r.ownedTrain = append(r.ownedTrain, pt.LocalOf[p][g])
			}
		}
		for _, g := range ds.TestIdx {
			if owner[g] == int32(p) {
				r.ownedTest = append(r.ownedTest, pt.LocalOf[p][g])
			}
		}

		if cfg.Algo == AlgoCDR || cfg.Algo == AlgoCDRS {
			r.captures = make([]*tensor.Matrix, len(aggDims))
			r.remoteAdd = make([]*tensor.Matrix, len(aggDims))
			r.staleTot = make([]*tensor.Matrix, len(aggDims))
			for l, d := range aggDims {
				r.captures[l] = tensor.New(nLocal, d)
				r.remoteAdd[l] = tensor.New(nLocal, d)
				r.staleTot[l] = tensor.New(nLocal, d)
			}
			r.staleMask = make([]bool, nLocal)
			r.pendingPartials = make(map[int][]delivery)
			r.pendingTotals = make(map[int][]delivery)
			r.pendingTotReqs = make(map[int][]totReq)
		}
		ranks[p] = r
	}

	// Per-rank optimizers (identical hyperparameters; identical gradients
	// after AllReduce ⇒ identical weight trajectories).
	for _, r := range ranks {
		if r == nil {
			continue
		}
		if cfg.UseAdam {
			r.opt = nn.NewAdam(cfg.LR, cfg.WeightDecay)
		} else {
			r.opt = &nn.SGD{LR: cfg.LR, WeightDecay: cfg.WeightDecay}
		}
	}
	return ranks, nil
}

func (r *rankCtx) optStep() { r.opt.Step(r.model.Params()) }

func (r *rankCtx) resetCounters() {
	r.gatherBytes, r.netBytes, r.netMsgs = 0, 0, 0
	r.exposedNet = 0
}

// installHooks wires the model's forward hook for the configured algorithm
// at the given epoch (cd-r/cd-rs need the epoch to select its bin).
func (r *rankCtx) installHooks(epoch int) {
	switch r.cfg.Algo {
	case Algo0C:
		r.model.FwdHook = nil
	case AlgoCD0:
		r.model.FwdHook = func(layer int, agg *tensor.Matrix) {
			r.exchangeSumBroadcast(agg, 0)
		}
	case AlgoCDR:
		bin := epoch % r.plan.bins
		r.model.FwdHook = func(layer int, agg *tensor.Matrix) {
			r.cdrForwardHook(layer, agg, bin)
		}
	case AlgoCDRS:
		bin := epoch % r.plan.bins
		if epoch >= r.cfg.Epochs {
			// Evaluation forward pass: stale buffers still apply, but
			// nothing new is posted on the fabric.
			r.model.FwdHook = func(layer int, agg *tensor.Matrix) {
				r.cdrForwardHook(layer, agg, bin)
			}
			return
		}
		e := epoch
		r.model.FwdHook = func(layer int, agg *tensor.Matrix) {
			r.cdrsForwardHook(layer, agg, bin, e)
		}
	}
}

// exchangeSumBroadcast runs the synchronous two-phase tree exchange on the
// given bin's rows of mat: leaves send partial rows to roots (AlltoAllV);
// roots reduce them in; roots send completed rows back; leaves overwrite.
// After it returns every clone of a bin split vertex holds the full sum.
func (r *rankCtx) exchangeSumBroadcast(mat *tensor.Matrix, bin int) {
	k := r.world.N
	d := mat.Cols

	// Phase A: leaf partials → roots.
	send := make([][]float32, k)
	for peer := 0; peer < k; peer++ {
		rows := r.plan.leafSend[bin][peer]
		send[peer] = r.cfg.CommPrecision.RoundSlice(packRows(mat, rows))
		r.countSend(len(rows), d)
	}
	recv := r.world.AlltoAllV(r.id, send)
	for peer := 0; peer < k; peer++ {
		rows := r.plan.rootRecv[bin][peer]
		if len(rows) > 0 {
			addRows(mat, rows, recv[peer])
			r.gatherBytes += int64(len(rows)*d) * 4
		}
	}

	// Phase B: completed roots → leaves.
	send = make([][]float32, k)
	for peer := 0; peer < k; peer++ {
		rows := r.plan.rootSend[bin][peer]
		send[peer] = r.cfg.CommPrecision.RoundSlice(packRows(mat, rows))
		r.countSend(len(rows), d)
	}
	recv = r.world.AlltoAllV(r.id, send)
	for peer := 0; peer < k; peer++ {
		rows := r.plan.leafRecv[bin][peer]
		if len(rows) > 0 {
			setRows(mat, rows, recv[peer])
			r.gatherBytes += int64(len(rows)*d) * 4
		}
	}
}

func (r *rankCtx) countSend(rows, d int) {
	if rows == 0 {
		return
	}
	// Gather staging stays float32; the wire format sets network volume.
	r.gatherBytes += int64(rows*d) * 4
	r.netBytes += int64(rows*d) * int64(r.cfg.CommPrecision.Bytes())
	r.netMsgs++
}

// countConcatSend counts one concatenated-across-layers buffer of the
// given row count: staging and wire volume for every layer, but a single
// message — the α latency term must match the one frame that actually
// crosses the fabric, not the number of layer blocks inside it.
func (r *rankCtx) countConcatSend(rows int) {
	if rows == 0 {
		return
	}
	for _, d := range r.aggDims {
		r.gatherBytes += int64(rows*d) * 4
		r.netBytes += int64(rows*d) * int64(r.cfg.CommPrecision.Bytes())
	}
	r.netMsgs++
}

// cdrForwardHook is the per-layer forward hook of the DRPA algorithm:
// capture this epoch's fresh local partials for the active bin, then apply
// the stale remote contributions received in earlier epochs. cd-rs shares
// both halves — its hook only adds the nonblocking posts in between.
func (r *rankCtx) cdrForwardHook(layer int, agg *tensor.Matrix, bin int) {
	r.captureBin(layer, agg, bin)
	r.applyStale(layer, agg)
}

// captureBin snapshots fresh local partials of rows this rank will send (as
// leaf) or fold into totals (as root) this epoch.
func (r *rankCtx) captureBin(layer int, agg *tensor.Matrix, bin int) {
	cap := r.captures[layer]
	for peer := 0; peer < r.world.N; peer++ {
		for _, row := range r.plan.leafSend[bin][peer] {
			copy(cap.Row(int(row)), agg.Row(int(row)))
		}
		for _, row := range r.plan.rootSend[bin][peer] {
			copy(cap.Row(int(row)), agg.Row(int(row)))
		}
	}
}

// applyStale folds in the remote contributions received in earlier epochs:
// roots add the stale sums of leaf partials, leaves overwrite with the
// stale totals where one has arrived.
func (r *rankCtx) applyStale(layer int, agg *tensor.Matrix) {
	agg.Add(r.remoteAdd[layer])
	stale := r.staleTot[layer]
	for v := 0; v < agg.Rows; v++ {
		if r.staleMask[v] {
			copy(agg.Row(v), stale.Row(v))
		}
	}
}

// delayedExchange runs at the end of each cd-r epoch: it ships this epoch's
// bin of leaf partials, processes the bundles whose delay has elapsed
// (root reduce + totals send-back), and applies totals whose delay has
// elapsed on the leaf side. The physical transfer happens now; the r-epoch
// staleness is enforced by the delivery queues.
func (r *rankCtx) delayedExchange(epoch int) {
	k := r.world.N
	bin := epoch % r.plan.bins

	// AlltoAll #1: leaf partials (concatenated across layers) → roots.
	send := make([][]float32, k)
	for peer := 0; peer < k; peer++ {
		rows := r.plan.leafSend[bin][peer]
		if len(rows) == 0 {
			continue
		}
		var buf []float32
		for l := range r.aggDims {
			buf = append(buf, packRows(r.captures[l], rows)...)
		}
		r.countConcatSend(len(rows))
		send[peer] = r.cfg.CommPrecision.RoundSlice(buf)
	}
	recv := r.world.AlltoAllV(r.id, send)
	for peer := 0; peer < k; peer++ {
		if len(recv[peer]) > 0 {
			r.pendingPartials[epoch+r.cfg.Delay] = append(r.pendingPartials[epoch+r.cfg.Delay],
				delivery{peer: peer, bin: bin, layer: allLayers, data: recv[peer]})
		}
	}

	// Root side: process partials whose delay elapsed; they were sent in
	// epoch-Delay for the same bin (Delay == bins ⇒ (epoch-Delay)%bins == bin).
	due := r.pendingPartials[epoch]
	delete(r.pendingPartials, epoch)
	// The new arrivals replace the previous stale sums for this bin's rows.
	for _, dl := range due {
		for l := range r.aggDims {
			zeroRows(r.remoteAdd[l], r.plan.rootRecv[dl.bin][dl.peer])
		}
	}
	for _, dl := range due {
		off := 0
		for l, d := range r.aggDims {
			rows := r.plan.rootRecv[dl.bin][dl.peer]
			n := len(rows) * d
			addRows(r.remoteAdd[l], rows, dl.data[off:off+n])
			r.gatherBytes += int64(n) * 4
			off += n
		}
	}

	// AlltoAll #2: totals (fresh root partial + stale leaf sums) → leaves.
	send = make([][]float32, k)
	processedBins := map[int]bool{}
	for _, dl := range due {
		processedBins[dl.bin] = true
	}
	for b := range processedBins {
		for peer := 0; peer < k; peer++ {
			rows := r.plan.rootSend[b][peer]
			if len(rows) == 0 {
				continue
			}
			var buf []float32
			for l, d := range r.aggDims {
				chunk := make([]float32, len(rows)*d)
				for i, row := range rows {
					dst := chunk[i*d : (i+1)*d]
					copy(dst, r.captures[l].Row(int(row)))
					remote := r.remoteAdd[l].Row(int(row))
					for j := range dst {
						dst[j] += remote[j]
					}
				}
				buf = append(buf, chunk...)
			}
			r.countConcatSend(len(rows))
			send[peer] = append(send[peer], r.cfg.CommPrecision.RoundSlice(buf)...)
		}
	}
	recv = r.world.AlltoAllV(r.id, send)
	for peer := 0; peer < k; peer++ {
		if len(recv[peer]) > 0 {
			r.pendingTotals[epoch+r.cfg.Delay] = append(r.pendingTotals[epoch+r.cfg.Delay],
				delivery{peer: peer, bin: bin, layer: allLayers, data: recv[peer]})
		}
	}

	// Leaf side: totals whose delay elapsed become the stale override.
	dueTot := r.pendingTotals[epoch]
	delete(r.pendingTotals, epoch)
	for _, dl := range dueTot {
		off := 0
		for l, d := range r.aggDims {
			rows := r.plan.leafRecv[dl.bin][dl.peer]
			n := len(rows) * d
			setRows(r.staleTot[l], rows, dl.data[off:off+n])
			r.gatherBytes += int64(n) * 4
			off += n
			for _, row := range rows {
				r.staleMask[row] = true
			}
		}
	}
}

func zeroRows(mat *tensor.Matrix, rows []int32) {
	for _, row := range rows {
		dst := mat.Row(int(row))
		for j := range dst {
			dst[j] = 0
		}
	}
}
