package train

import (
	"distgnn/internal/partition"
	"distgnn/internal/tensor"
)

// xplan holds one rank's view of the split-vertex communication structure:
// for every bin (cd-r splits the split-vertex set into Delay bins, §5.3) and
// every peer rank, the local row IDs involved in each direction of the
// 1-level tree exchange of Alg. 4. Lists are built from Partitioning.Splits
// in a single deterministic order on every rank, so position i of a sender's
// list pairs with position i of the receiver's list.
type xplan struct {
	bins int
	// leafSend[bin][peer]: rows this rank sends to root=peer (it is a leaf).
	leafSend [][][]int32
	// rootRecv[bin][peer]: rows this rank reduces when leaf=peer's partials arrive.
	rootRecv [][][]int32
	// rootSend[bin][peer]: rows this rank sends back to leaf=peer (it is the root).
	rootSend [][][]int32
	// leafRecv[bin][peer]: rows this rank overwrites when root=peer's totals arrive.
	leafRecv [][][]int32
}

// buildXPlans constructs per-rank exchange plans with the split-vertex set
// divided into bins contiguous chunks (bins=1 reproduces cd-0's full
// exchange; bins=r gives cd-r's per-epoch subsets).
func buildXPlans(pt *partition.Partitioning, bins int) []*xplan {
	if bins < 1 {
		bins = 1
	}
	k := pt.K
	plans := make([]*xplan, k)
	for r := 0; r < k; r++ {
		p := &xplan{bins: bins}
		p.leafSend = makeBinPeer(bins, k)
		p.rootRecv = makeBinPeer(bins, k)
		p.rootSend = makeBinPeer(bins, k)
		p.leafRecv = makeBinPeer(bins, k)
		plans[r] = p
	}
	nSplits := len(pt.Splits)
	for s, sv := range pt.Splits {
		bin := 0
		if nSplits > 0 {
			bin = s * bins / nSplits
		}
		root := sv.Clones[0]
		for _, leaf := range sv.Clones[1:] {
			plans[leaf.Part].leafSend[bin][root.Part] = append(plans[leaf.Part].leafSend[bin][root.Part], leaf.Local)
			plans[root.Part].rootRecv[bin][leaf.Part] = append(plans[root.Part].rootRecv[bin][leaf.Part], root.Local)
			plans[root.Part].rootSend[bin][leaf.Part] = append(plans[root.Part].rootSend[bin][leaf.Part], root.Local)
			plans[leaf.Part].leafRecv[bin][root.Part] = append(plans[leaf.Part].leafRecv[bin][root.Part], leaf.Local)
		}
	}
	return plans
}

func makeBinPeer(bins, k int) [][][]int32 {
	out := make([][][]int32, bins)
	for b := range out {
		out[b] = make([][]int32, k)
	}
	return out
}

// packRows gathers the listed rows of mat into one contiguous buffer —
// the pre-processing gather of Alg. 4 (lines 10, 15).
func packRows(mat *tensor.Matrix, rows []int32) []float32 {
	if len(rows) == 0 {
		return nil
	}
	d := mat.Cols
	out := make([]float32, len(rows)*d)
	for i, r := range rows {
		copy(out[i*d:(i+1)*d], mat.Row(int(r)))
	}
	return out
}

// addRows scatter-reduces buf into the listed rows (Alg. 4 line 14).
func addRows(mat *tensor.Matrix, rows []int32, buf []float32) {
	d := mat.Cols
	for i, r := range rows {
		dst := mat.Row(int(r))
		src := buf[i*d : (i+1)*d]
		for j := range dst {
			dst[j] += src[j]
		}
	}
}

// setRows scatter-writes buf into the listed rows (Alg. 4 line 20).
func setRows(mat *tensor.Matrix, rows []int32, buf []float32) {
	d := mat.Cols
	for i, r := range rows {
		copy(mat.Row(int(r)), buf[i*d:(i+1)*d])
	}
}
