package train

import (
	"fmt"
	"math/rand"
	"testing"

	"distgnn/internal/datasets"
	"distgnn/internal/partition"
)

// randomPartitionings yields a spread of partitionings over random graphs
// and partitioners — the input space buildXPlans must be correct on.
func randomPartitionings(t *testing.T) []*partition.Partitioning {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var pts []*partition.Partitioning
	for trial := 0; trial < 6; trial++ {
		seed := rng.Int63()
		ds, err := datasets.Generate(datasets.Spec{
			Name:        fmt.Sprintf("xplan-prop-%d", trial),
			NumVertices: 150 + rng.Intn(400), AvgDegree: float64(3 + rng.Intn(14)),
			FeatDim: 4, NumClasses: 3, Communities: 2 + rng.Intn(4),
			IntraFrac: 0.5 + 0.4*rng.Float64(), Undirected: trial%2 == 0,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + rng.Intn(7)
		var p partition.Partitioner = partition.Libra{Seed: seed}
		if trial%3 == 1 {
			p = partition.RandomEdge{Seed: seed}
		}
		pt, err := partition.Partition(ds.G, p, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt)
	}
	return pts
}

// TestXPlanSenderReceiverListsPairPositionally: for every (leaf, root) rank
// pair and bin, the sender's row list and the receiver's row list must have
// equal length and refer to the same global vertices position by position —
// the invariant that lets the exchange ship bare row blocks with no IDs on
// the wire, in both directions of the 1-level tree.
func TestXPlanSenderReceiverListsPairPositionally(t *testing.T) {
	for _, pt := range randomPartitionings(t) {
		for _, bins := range []int{1, 2, 3, 5, 17} {
			plans := buildXPlans(pt, bins)
			for a := 0; a < pt.K; a++ {
				for b := 0; b < pt.K; b++ {
					for bin := 0; bin < bins; bin++ {
						// Phase A: leaf a → root b.
						send, recv := plans[a].leafSend[bin][b], plans[b].rootRecv[bin][a]
						if len(send) != len(recv) {
							t.Fatalf("bins=%d bin=%d %d→%d: leafSend %d rows, rootRecv %d",
								bins, bin, a, b, len(send), len(recv))
						}
						for i := range send {
							ga := pt.Parts[a].GlobalID[send[i]]
							gb := pt.Parts[b].GlobalID[recv[i]]
							if ga != gb {
								t.Fatalf("bins=%d bin=%d %d→%d pos %d: leaf global %d vs root global %d",
									bins, bin, a, b, i, ga, gb)
							}
						}
						// Phase B: root b → leaf a.
						send, recv = plans[b].rootSend[bin][a], plans[a].leafRecv[bin][b]
						if len(send) != len(recv) {
							t.Fatalf("bins=%d bin=%d %d←%d: rootSend %d rows, leafRecv %d",
								bins, bin, a, b, len(send), len(recv))
						}
						for i := range send {
							gb := pt.Parts[b].GlobalID[send[i]]
							ga := pt.Parts[a].GlobalID[recv[i]]
							if ga != gb {
								t.Fatalf("bins=%d bin=%d %d←%d pos %d: root global %d vs leaf global %d",
									bins, bin, a, b, i, gb, ga)
							}
						}
					}
				}
			}
		}
	}
}

// TestXPlanEveryCloneInExactlyOneBin: each leaf clone of each split vertex
// must appear in exactly one (bin, root) slot of its partition's leafSend —
// sent once per delay cycle, never duplicated, never dropped.
func TestXPlanEveryCloneInExactlyOneBin(t *testing.T) {
	for _, pt := range randomPartitionings(t) {
		for _, bins := range []int{1, 3, 5} {
			plans := buildXPlans(pt, bins)
			// Count appearances of every (partition, local row) leaf clone.
			seen := map[[2]int32]int{}
			for p := 0; p < pt.K; p++ {
				for bin := 0; bin < bins; bin++ {
					for _, rows := range plans[p].leafSend[bin] {
						for _, row := range rows {
							seen[[2]int32{int32(p), row}]++
						}
					}
				}
			}
			want := map[[2]int32]int{}
			for _, sv := range pt.Splits {
				for _, leaf := range sv.Clones[1:] {
					want[[2]int32{leaf.Part, leaf.Local}]++
				}
			}
			if len(seen) != len(want) {
				t.Fatalf("bins=%d: %d distinct clones planned, want %d", bins, len(seen), len(want))
			}
			for clone, n := range seen {
				if n != want[clone] {
					t.Fatalf("bins=%d: clone %v appears %d times, want %d", bins, clone, n, want[clone])
				}
			}
		}
	}
}

// TestXPlanBinsPartitionSplits: the bin assignment must partition
// pt.Splits — every split vertex lands in exactly one bin, all of its
// clone traffic shares that bin, and the union over bins covers the whole
// split set.
func TestXPlanBinsPartitionSplits(t *testing.T) {
	for _, pt := range randomPartitionings(t) {
		for _, bins := range []int{1, 2, 4, 7} {
			plans := buildXPlans(pt, bins)
			// Recover each split vertex's bin(s) from the planned traffic.
			binsOf := map[int32]map[int]bool{}
			for p := 0; p < pt.K; p++ {
				for bin := 0; bin < bins; bin++ {
					for _, rows := range plans[p].leafSend[bin] {
						for _, row := range rows {
							g := pt.Parts[p].GlobalID[row]
							if binsOf[g] == nil {
								binsOf[g] = map[int]bool{}
							}
							binsOf[g][bin] = true
						}
					}
				}
			}
			covered := 0
			for _, sv := range pt.Splits {
				bs := binsOf[sv.Global]
				if len(sv.Clones) < 2 {
					t.Fatalf("split vertex %d with %d clones", sv.Global, len(sv.Clones))
				}
				if len(bs) != 1 {
					t.Fatalf("bins=%d: split vertex %d spread over bins %v, want exactly one",
						bins, sv.Global, bs)
				}
				covered++
			}
			if covered != len(pt.Splits) || len(binsOf) != len(pt.Splits) {
				t.Fatalf("bins=%d: %d vertices with traffic, %d splits covered, want %d",
					bins, len(binsOf), covered, len(pt.Splits))
			}
		}
	}
}
