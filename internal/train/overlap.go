package train

// overlap.go implements cd-rs, the top of the paper's algorithm ladder:
// cd-r's delayed partial-aggregate exchange rebuilt on nonblocking
// Isend/Irecv so the network term overlaps with compute (§6.3). Each bin's
// leaf partials are posted to their roots as soon as a layer's aggregation
// produces them — before the forward pass of the remaining layers —
// completions are drained at layer boundaries, and the epoch-end wait
// charges only what compute failed to hide. Every floating-point operation
// matches cd-r exactly: the same captures are shipped, the same delay
// queues hold them, and the reduction applies peer contributions in the
// same (peer, layer) order, so cd-rs is bit-identical to cd-r at every
// epoch (the conformance tests pin this at 2/4/8 sockets).

import (
	"sort"

	"distgnn/internal/comm"
	"distgnn/internal/tensor"
)

// allLayers marks a delivery whose payload concatenates every layer (the
// cd-r wire format); cd-rs phase-A deliveries carry one layer each.
const allLayers = -1

// pendReq is a phase-A (leaf partial → root) receive in flight.
type pendReq struct {
	peer  int
	bin   int
	layer int
	req   *comm.Request
}

// totReq is a phase-B (root total → leaf) receive parked until its delay
// elapses; Delay epochs of compute hide the transfer entirely.
type totReq struct {
	peer int
	bin  int
	req  *comm.Request
}

// Message tags: phase-A partials are keyed by (epoch, layer) on the even
// namespace, phase-B totals by epoch on the odd one, so no two in-flight
// payloads between a rank pair ever share a key.
func tagPartial(epoch, numLayers, layer int) int { return (epoch*numLayers + layer) << 1 }
func tagTotal(epoch int) int                     { return epoch<<1 | 1 }

// waitSend retires a send request immediately: sends complete at post time
// (buffered semantics), so the Wait is free — its only job is surfacing a
// transport failure (a TCP write error, an oversized frame) at the sender
// with the real cause, instead of as a misleading receive timeout on the
// peer a minute later.
func (r *rankCtx) waitSend(req *comm.Request) {
	if _, err := req.Wait(); err != nil {
		panic(err)
	}
}

// cdrsForwardHook is cd-r's forward hook with the exchange posted inline:
// capture the bin's fresh partials, ship this layer's rows immediately so
// the transfer rides under the remaining layers' compute, reel in already
// hidden arrivals, then apply the stale remote state exactly as cd-r does.
func (r *rankCtx) cdrsForwardHook(layer int, agg *tensor.Matrix, bin, epoch int) {
	// This layer's aggregation is compute the in-flight transfers hide
	// behind; advance the simulated clock before posting.
	r.cfg.Net.ChargeCompute(r.id,
		r.cfg.Compute.AggSeconds(int64(r.part.G.NumEdges)*int64(r.aggDims[layer])))

	r.captureBin(layer, agg, bin)

	numLayers := len(r.aggDims)
	tag := tagPartial(epoch, numLayers, layer)
	for peer := 0; peer < r.world.N; peer++ {
		if rows := r.plan.leafSend[bin][peer]; len(rows) > 0 {
			payload := packRows(r.captures[layer], rows)
			r.waitSend(r.world.IsendPacked(r.id, peer, tag, payload, r.cfg.CommPrecision))
			r.countSend(len(rows), r.aggDims[layer])
		}
		if len(r.plan.rootRecv[bin][peer]) > 0 {
			r.pendingAReqs = append(r.pendingAReqs, pendReq{
				peer: peer, bin: bin, layer: layer,
				req: r.world.Irecv(r.id, peer, tag),
			})
		}
	}

	// Layer boundary: drain transfers that completed under the compute
	// charged so far.
	r.drainPartials(epoch, false)

	r.applyStale(layer, agg)
}

// drainPartials moves completed phase-A receives into the delay queue. At
// layer boundaries (final=false) it takes only transfers that are already
// hidden — present and simulated-complete, so the set drained is a function
// of simulated time, not goroutine scheduling. At the epoch end
// (final=true) it waits out the rest, accumulating the exposed remainder.
func (r *rankCtx) drainPartials(epoch int, final bool) {
	kept := r.pendingAReqs[:0]
	for _, pr := range r.pendingAReqs {
		if !final {
			hidden, err := pr.req.TestHidden()
			if err != nil {
				panic(err)
			}
			if !hidden {
				kept = append(kept, pr)
				continue
			}
		}
		data, err := pr.req.Wait()
		if err != nil {
			panic(err)
		}
		r.exposedNet += pr.req.Exposed()
		r.pendingPartials[epoch+r.cfg.Delay] = append(r.pendingPartials[epoch+r.cfg.Delay],
			delivery{peer: pr.peer, bin: pr.bin, layer: pr.layer, data: data})
	}
	r.pendingAReqs = kept
}

// overlappedExchange is cd-rs's epoch-end step, the counterpart of cd-r's
// delayedExchange: finish draining this epoch's posts, reduce the partials
// whose delay elapsed, ship totals back to leaves nonblocking, and harvest
// totals that have ridden out their own delay.
func (r *rankCtx) overlappedExchange(epoch int) {
	// Backward aggregation and the dense layers extend the overlap window
	// before the final drain.
	r.cfg.Net.ChargeCompute(r.id,
		r.cfg.Compute.AggSeconds(r.aggWorkElems())+r.cfg.Compute.MLPSeconds(r.mlpWorkMACs()))
	r.drainPartials(epoch, true)

	k := r.world.N
	bin := epoch % r.plan.bins

	// Root side: reduce due partials. Arrival order is whatever the drains
	// produced; sorting by (peer, layer) restores cd-r's reduction order so
	// the float sums are bit-identical.
	due := r.pendingPartials[epoch]
	delete(r.pendingPartials, epoch)
	sort.Slice(due, func(i, j int) bool {
		if due[i].peer != due[j].peer {
			return due[i].peer < due[j].peer
		}
		return due[i].layer < due[j].layer
	})
	for _, dl := range due {
		zeroRows(r.remoteAdd[dl.layer], r.plan.rootRecv[dl.bin][dl.peer])
	}
	for _, dl := range due {
		rows := r.plan.rootRecv[dl.bin][dl.peer]
		addRows(r.remoteAdd[dl.layer], rows, dl.data)
		r.gatherBytes += int64(len(rows)*r.aggDims[dl.layer]) * 4
	}

	// Phase B: totals (fresh root partial + stale leaf sums) back to the
	// leaves, in cd-r's concatenated-layers wire format, posted nonblocking.
	if len(due) > 0 {
		for peer := 0; peer < k; peer++ {
			rows := r.plan.rootSend[bin][peer]
			if len(rows) == 0 {
				continue
			}
			var buf []float32
			for l, d := range r.aggDims {
				chunk := make([]float32, len(rows)*d)
				for i, row := range rows {
					dst := chunk[i*d : (i+1)*d]
					copy(dst, r.captures[l].Row(int(row)))
					remote := r.remoteAdd[l].Row(int(row))
					for j := range dst {
						dst[j] += remote[j]
					}
				}
				buf = append(buf, chunk...)
			}
			r.countConcatSend(len(rows))
			r.waitSend(r.world.IsendPacked(r.id, peer, tagTotal(epoch), buf, r.cfg.CommPrecision))
		}
	}

	// Leaf side: post receives for the totals roots just sent (roots have
	// due partials — hence send — exactly when epoch ≥ Delay), parked until
	// their own delay elapses.
	if epoch >= r.cfg.Delay {
		for peer := 0; peer < k; peer++ {
			if len(r.plan.leafRecv[bin][peer]) == 0 {
				continue
			}
			r.pendingTotReqs[epoch+r.cfg.Delay] = append(r.pendingTotReqs[epoch+r.cfg.Delay],
				totReq{peer: peer, bin: bin, req: r.world.Irecv(r.id, peer, tagTotal(epoch))})
		}
	}

	// Harvest totals whose delay elapsed: Delay epochs of compute have
	// advanced the clock far past their completion, so the wait is free.
	dueT := r.pendingTotReqs[epoch]
	delete(r.pendingTotReqs, epoch)
	sort.Slice(dueT, func(i, j int) bool { return dueT[i].peer < dueT[j].peer })
	for _, tr := range dueT {
		data, err := tr.req.Wait()
		if err != nil {
			panic(err)
		}
		r.exposedNet += tr.req.Exposed()
		off := 0
		for l, d := range r.aggDims {
			rows := r.plan.leafRecv[tr.bin][tr.peer]
			n := len(rows) * d
			setRows(r.staleTot[l], rows, data[off:off+n])
			r.gatherBytes += int64(n) * 4
			off += n
			for _, row := range rows {
				r.staleMask[row] = true
			}
		}
	}
}
