package train

import (
	"math"
	"testing"

	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

func TestBF16CommAccuracyNearFP32(t *testing.T) {
	ds := testDataset(t)
	run := func(p quant.Precision) *DistResult {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: AlgoCD0,
			Epochs: 40, LR: 0.05, UseAdam: true, Seed: 2, CommPrecision: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fp32 := run(quant.FP32)
	bf16 := run(quant.BF16)
	fp16 := run(quant.FP16)
	if math.Abs(bf16.TestAcc-fp32.TestAcc) > 0.05 {
		t.Fatalf("bf16 accuracy %v too far from fp32 %v", bf16.TestAcc, fp32.TestAcc)
	}
	if math.Abs(fp16.TestAcc-fp32.TestAcc) > 0.05 {
		t.Fatalf("fp16 accuracy %v too far from fp32 %v", fp16.TestAcc, fp32.TestAcc)
	}
}

func TestLowPrecisionHalvesExposedNetworkTime(t *testing.T) {
	ds := testDataset(t)
	rat := func(p quant.Precision) float64 {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: AlgoCD0,
			Epochs: 3, LR: 0.05, Seed: 2, CommPrecision: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, r := res.AvgLATRAT(0, 3)
		return r
	}
	full := rat(quant.FP32)
	half := rat(quant.BF16)
	if half >= full {
		t.Fatalf("bf16 RAT %v not below fp32 RAT %v", half, full)
	}
	// The bandwidth term halves; latency and gather/scatter terms do not,
	// so the ratio lands strictly between 0.5 and 1.
	if half < 0.4*full {
		t.Fatalf("bf16 RAT %v implausibly below half of fp32 %v", half, full)
	}
}

func TestLowPrecisionRoundingActuallyApplied(t *testing.T) {
	// bf16-trained losses must differ from fp32-trained losses (the wire
	// rounding is real, not just an accounting change).
	ds := testDataset(t)
	run := func(p quant.Precision) float64 {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: AlgoCD0,
			Epochs: 3, LR: 0.05, Seed: 2, CommPrecision: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Epochs[2].Loss
	}
	if run(quant.FP32) == run(quant.BF16) {
		t.Fatal("bf16 rounding had no effect on training trajectory")
	}
}

// TestSingleSocketBF16FeaturesBitIdenticalToRoundedFP32 pins the feature-
// precision contract: a bf16 run is exactly an fp32 run over the once-
// rounded feature matrix — same losses, bit for bit — because bf16 decode
// is exact and the layer-0 kernel accumulates in float32 in the same order.
func TestSingleSocketBF16FeaturesBitIdenticalToRoundedFP32(t *testing.T) {
	ds := testDataset(t)
	bf16, err := SingleSocket(ds, SingleConfig{
		Model: smallModel(), Epochs: 5, LR: 0.05, UseAdam: true,
		FeatPrecision: quant.BF16,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: round the features in place, train fp32.
	rounded := tensor.BF16FromMatrix(ds.Features).ToMatrix()
	copy(ds.Features.Data, rounded.Data)
	fp32, err := SingleSocket(ds, SingleConfig{
		Model: smallModel(), Epochs: 5, LR: 0.05, UseAdam: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := range bf16.Epochs {
		if bf16.Epochs[e].Loss != fp32.Epochs[e].Loss {
			t.Fatalf("epoch %d: bf16 loss %v != rounded-fp32 loss %v",
				e, bf16.Epochs[e].Loss, fp32.Epochs[e].Loss)
		}
	}
	if bf16.TestAcc != fp32.TestAcc {
		t.Fatalf("bf16 test acc %v != rounded-fp32 %v", bf16.TestAcc, fp32.TestAcc)
	}
}

func TestSingleSocketBF16RejectsBaselineKernel(t *testing.T) {
	ds := testDataset(t)
	mc := smallModel()
	mc.UseBaselineAgg = true
	if _, err := SingleSocket(ds, SingleConfig{
		Model: mc, Epochs: 1, LR: 0.05, FeatPrecision: quant.BF16,
	}); err == nil {
		t.Fatal("bf16 + baseline kernel must be rejected")
	}
	if _, err := SingleSocket(ds, SingleConfig{
		Model: smallModel(), Epochs: 1, LR: 0.05, FeatPrecision: quant.FP16,
	}); err == nil {
		t.Fatal("fp16 feature precision must be rejected")
	}
}
