package train

// remote.go drives exactly one rank of a distributed run when
// DistConfig.Transport is a single-rank endpoint — true multi-process
// training, each rank its own OS process over TCP. The per-rank epoch body
// is the same code the in-process driver runs; only the cross-rank
// reductions the in-process driver performs in shared memory differ, and
// each of those is carried over the fabric with the same rank-ordered
// float arithmetic:
//
//   - the gradient AllReduce goes through comm's transport collectives,
//     which reduce in rank order — the in-process float order exactly;
//   - the loss sum and per-phase timing maxima ride one AllGather per
//     epoch, with each float64 shipped as its raw bit pattern (two float32
//     words) so the aggregation is bit-identical to the shared-memory
//     driver, not a rounded approximation.
//
// The net effect, pinned by the cross-transport conformance harness: a
// 4-process TCP fleet reports the same losses and trains the same
// parameters, bit for bit, as the 4-goroutine in-process world.

import (
	"fmt"
	"math"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/parallel"
)

// DistributedFleet drives one Distributed trainer per transport endpoint
// concurrently — the one-process harness for a whole multi-process fleet,
// used by loopback tests, the abl-transport benchmark, and the tcploopback
// example (real deployments run one process per rank instead). Endpoints
// must belong to a single established fabric whose size matches
// cfg.NumPartitions; they are not closed. Returns rank 0's result.
func DistributedFleet(ds *datasets.Dataset, cfg DistConfig, endpoints []comm.Transport) (*DistResult, error) {
	results := make([]*DistResult, len(endpoints))
	errs := make([]error, len(endpoints))
	var g parallel.Group
	for i := range endpoints {
		i := i
		g.Go(func() {
			rcfg := cfg
			rcfg.Transport = endpoints[i]
			results[i], errs[i] = Distributed(ds, rcfg)
		})
	}
	g.Wait()
	var rank0 *DistResult
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("train: fleet endpoint %d (rank %d): %w", i, endpoints[i].Self(), err)
		}
		if endpoints[i].Self() == 0 {
			rank0 = results[i]
		}
	}
	if rank0 == nil {
		return nil, fmt.Errorf("train: fleet has no rank-0 endpoint")
	}
	return rank0, nil
}

// statWords is the per-rank epoch report: 5 phase times plus the loss
// part, each as a float64 split into two float32 bit-pattern words.
const statWords = 12

// splitF64 ships a float64 through a float32 collective losslessly: the
// two words carry the raw halves of its bit pattern (they are bit
// patterns, not values — never do arithmetic on them).
func splitF64(v float64) (hi, lo float32) {
	b := math.Float64bits(v)
	return math.Float32frombits(uint32(b >> 32)), math.Float32frombits(uint32(b))
}

func joinF64(hi, lo float32) float64 {
	return math.Float64frombits(uint64(math.Float32bits(hi))<<32 | uint64(math.Float32bits(lo)))
}

// runEpochRemote executes one epoch of this process's rank. Every process
// in the fleet runs the same sequence of collectives in the same order —
// gradient AllReduce, then the stat gather — which is all the transport
// needs to match them up.
func (s *distState) runEpochRemote(epoch int) DistEpochStat {
	cfg := &s.cfg
	r := s.ranks[s.local]
	if cfg.Algo == AlgoCDRS {
		// Each process owns only its own rank's simulated clock, so this
		// aligns nothing across the fleet (unlike the in-process driver) —
		// per-rank overlap windows still reset correctly, but cross-rank
		// clock skew is not cancelled and simulated timings are advisory in
		// multi-process mode. Real wall-clock is what TCP runs measure.
		cfg.Net.SyncClocks()
	}
	return s.gatherEpochStat(r, s.trainEpochRank(r, epoch))
}

// gatherEpochStat assembles the epoch's global timing and loss from every
// rank's counters: one AllGather of the per-rank phase times and loss
// parts, then the same max/sum the in-process timeEpoch computes.
func (s *distState) gatherEpochStat(r *rankCtx, lossPart float64) DistEpochStat {
	lat, bwd, mlp, rat, exposed := rankPhaseSeconds(&s.cfg, r)
	local := make([]float32, 0, statWords)
	for _, v := range [...]float64{lat, bwd, mlp, rat, exposed, lossPart} {
		hi, lo := splitF64(v)
		local = append(local, hi, lo)
	}
	all := s.world.AllGather(s.local, local)

	var st DistEpochStat
	var lsum float64
	for rk := 0; rk < s.cfg.NumPartitions; rk++ {
		w := all[rk*statWords : (rk+1)*statWords]
		get := func(i int) float64 { return joinF64(w[2*i], w[2*i+1]) }
		st.LAT = math.Max(st.LAT, get(0))
		st.BwdAgg = math.Max(st.BwdAgg, get(1))
		st.MLP = math.Max(st.MLP, get(2))
		st.RAT = math.Max(st.RAT, get(3))
		st.ExposedNet = math.Max(st.ExposedNet, get(4))
		lsum += get(5)
	}
	if s.globalTrain > 0 {
		st.Loss = lsum / float64(s.globalTrain)
	}
	st.ParamSync = paramSyncSeconds(&s.cfg, r.model.NumParams())
	st.Epoch = st.LAT + st.BwdAgg + st.MLP + st.RAT + st.ParamSync
	return st
}

// evaluateRemote scores this rank's owned vertices and reduces the correct
// counts across the fleet.
func (s *distState) evaluateRemote() (trainAcc, testAcc float64) {
	r := s.ranks[s.local]
	trainC, testC := s.evalRank(r)
	// Counts are small integers: exact in float32.
	all := s.world.AllGather(s.local, []float32{float32(trainC), float32(testC)})
	var trainTot, testTot float64
	for rk := 0; rk < s.cfg.NumPartitions; rk++ {
		trainTot += float64(all[2*rk])
		testTot += float64(all[2*rk+1])
	}
	if s.globalTrain > 0 {
		trainAcc = trainTot / float64(s.globalTrain)
	}
	if len(s.testIdx) > 0 {
		testAcc = testTot / float64(len(s.testIdx))
	}
	return trainAcc, testAcc
}
