// Package train implements DistGNN's training loops: the single-socket
// full-batch trainer (§4, Fig. 2) and the distributed trainer with the
// three §5.3 algorithms — 0c (communication avoidance), cd-0 (synchronous
// partial-aggregate exchange) and cd-r (Delayed Remote Partial Aggregates,
// Alg. 4) — over vertex-cut partitions and the comm runtime.
package train

import (
	"fmt"
	"time"

	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/nn"
	"distgnn/internal/parallel"
	"distgnn/internal/quant"
	"distgnn/internal/tensor"
)

// SingleConfig configures single-socket full-batch training.
type SingleConfig struct {
	Model       model.Config
	Epochs      int
	LR          float64
	WeightDecay float64
	UseAdam     bool
	// Workers sizes the process-wide kernel worker pool for this run — the
	// OMP_NUM_THREADS knob of the paper's experiments. 0 keeps the current
	// pool (GOMAXPROCS by default).
	Workers int
	// FeatPrecision selects input-feature storage. quant.FP32 (zero value)
	// trains over the dataset matrix unchanged. quant.BF16 rounds the
	// features once into a 16-bit slab: the layer-0 aggregation streams the
	// slab (half the feature-read traffic, float32 accumulation) and every
	// other consumer reads the decoded fp32 copy, so the run is
	// bit-identical to fp32 training over the rounded features.
	// Incompatible with Model.UseBaselineAgg (the baseline kernel is
	// fp32-only). Distributed training is fp32-only: the partial-aggregate
	// conformance pins are defined over fp32 inputs.
	FeatPrecision quant.Precision
}

// EpochStat records one epoch of single-socket training: the loss, total
// wall time, and the time spent inside the aggregation primitive (the two
// bars of Fig. 2).
type EpochStat struct {
	Loss  float64
	Total time.Duration
	Agg   time.Duration
}

// SingleResult is the outcome of a single-socket training run.
type SingleResult struct {
	Epochs   []EpochStat
	TrainAcc float64
	ValAcc   float64
	TestAcc  float64
	Model    *model.GraphSAGE
}

// AvgEpoch returns mean total and aggregation time over epochs [lo, hi)
// (clamped), matching the paper's habit of averaging over a window.
func (r *SingleResult) AvgEpoch(lo, hi int) (total, agg time.Duration) {
	if hi > len(r.Epochs) {
		hi = len(r.Epochs)
	}
	if lo >= hi {
		return 0, 0
	}
	for _, e := range r.Epochs[lo:hi] {
		total += e.Total
		agg += e.Agg
	}
	n := time.Duration(hi - lo)
	return total / n, agg / n
}

// SingleSocket trains GraphSAGE full-batch on one simulated socket.
// Model dimensions are filled from the dataset when left zero.
func SingleSocket(ds *datasets.Dataset, cfg SingleConfig) (*SingleResult, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: Epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.Workers > 0 {
		parallel.Configure(parallel.Config{Workers: cfg.Workers})
	}
	mc := cfg.Model
	if mc.InDim == 0 {
		mc.InDim = ds.Features.Cols
	}
	if mc.OutDim == 0 {
		mc.OutDim = ds.NumClasses
	}
	if mc.NumLayers == 0 {
		mc.NumLayers = 3
	}
	if mc.Hidden == 0 {
		mc.Hidden = 256
	}
	m, err := model.New(ds.G, mc, nil)
	if err != nil {
		return nil, err
	}
	// Feature precision: bf16 rounds once up front; the model reads the slab
	// in layer 0 and the decoded copy everywhere else.
	feats := ds.Features
	switch cfg.FeatPrecision {
	case quant.FP32:
	case quant.BF16:
		slab := tensor.BF16FromMatrix(ds.Features)
		feats = slab.ToMatrix()
		if err := m.SetBF16Features(slab); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("train: unsupported feature precision %v (fp32 or bf16)", cfg.FeatPrecision)
	}
	var opt nn.Optimizer
	if cfg.UseAdam {
		opt = nn.NewAdam(cfg.LR, cfg.WeightDecay)
	} else {
		opt = &nn.SGD{LR: cfg.LR, WeightDecay: cfg.WeightDecay}
	}

	res := &SingleResult{Model: m}
	params := m.Params()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		m.ResetAggTime()
		logits := m.Forward(feats, true)
		loss, dlogits := nn.MaskedCrossEntropy(logits, ds.Labels, ds.TrainIdx)
		nn.ZeroGrads(params)
		m.Backward(dlogits)
		opt.Step(params)
		res.Epochs = append(res.Epochs, EpochStat{
			Loss:  loss,
			Total: time.Since(start),
			Agg:   m.AggTime,
		})
	}

	logits := m.Forward(feats, false)
	res.TrainAcc = nn.Accuracy(logits, ds.Labels, ds.TrainIdx)
	res.ValAcc = nn.Accuracy(logits, ds.Labels, ds.ValIdx)
	res.TestAcc = nn.Accuracy(logits, ds.Labels, ds.TestIdx)
	return res, nil
}
