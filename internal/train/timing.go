package train

// timing.go converts each epoch's executed work and communication counters
// into simulated cluster time (Fig. 5/6). Each partition is modeled as one
// full CPU socket: compute terms use the calibrated per-socket throughput
// model and communication terms use the α–β network model. The blocking
// algorithms (cd-0 every layer, cd-r once per epoch) expose their full
// network term; cd-rs posts the same traffic nonblocking and pays only the
// remainder its compute failed to hide — the behaviour §6.3 reports ("a
// negligible amount of time is spent waiting for asynchronous overlapped
// communication").

// aggWorkElems returns the forward aggregation work of one rank in
// edge-feature element updates: Σ_layers |E_p| × d_l.
func (r *rankCtx) aggWorkElems() int64 {
	var total int64
	for _, d := range r.aggDims {
		total += int64(r.part.G.NumEdges) * int64(d)
	}
	return total
}

// mlpWorkMACs returns the dense-layer work of one rank per epoch in
// multiply-accumulates: forward N·in·out per layer, ×3 for backward
// (dW = xᵀ·dy and dx = dy·Wᵀ).
func (r *rankCtx) mlpWorkMACs() int64 {
	n := int64(r.part.NumLocal())
	var fwd int64
	in := int64(r.cfg.Model.InDim)
	for l := 0; l < r.cfg.Model.NumLayers; l++ {
		out := int64(r.cfg.Model.Hidden)
		if l == r.cfg.Model.NumLayers-1 {
			out = int64(r.cfg.Model.OutDim)
		}
		fwd += n * in * out
		in = out
	}
	return 3 * fwd
}

// rankPhaseSeconds converts one rank's epoch counters into its simulated
// phase times. Both epoch drivers use it: the in-process one maxes across
// all ranks in shared memory (timeEpoch), the multi-process one gathers
// every rank's values over the fabric (gatherEpochStat in remote.go).
func rankPhaseSeconds(cfg *DistConfig, r *rankCtx) (lat, bwd, mlp, rat, exposed float64) {
	lat = cfg.Compute.AggSeconds(r.aggWorkElems())
	bwd = lat // backward propagates gradients over the same edges
	mlp = cfg.Compute.MLPSeconds(r.mlpWorkMACs())

	rat = float64(r.gatherBytes) / cfg.Net.MemBandwidth
	switch cfg.Algo {
	case AlgoCD0, AlgoCDR:
		// Synchronous exchange exposes the network time: cd-0 blocks at
		// every layer, cd-r's AlltoAllV blocks at the epoch boundary
		// (on 1/Delay of the volume).
		rat += float64(r.netMsgs)*cfg.Net.NetLatency +
			float64(r.netBytes)/cfg.Net.NetBandwidth
	case AlgoCDRS:
		// Overlapped exchange: only the remainder compute failed to
		// hide, as accounted at each Wait.
		rat += r.exposedNet
		exposed = r.exposedNet
	}
	return lat, bwd, mlp, rat, exposed
}

// paramSyncSeconds models the per-epoch gradient AllReduce: a ring over K
// ranks of the flattened parameter buffer.
func paramSyncSeconds(cfg *DistConfig, numParams int) float64 {
	if cfg.NumPartitions <= 1 {
		return 0
	}
	bytes := numParams * 4
	steps := float64(2 * (cfg.NumPartitions - 1))
	return steps*cfg.Net.NetLatency +
		steps*float64(bytes)/float64(cfg.NumPartitions)/cfg.Net.NetBandwidth
}

// timeEpoch aggregates per-rank counters into the epoch's simulated timing:
// the slowest rank bounds each phase (bulk-synchronous execution).
func timeEpoch(cfg *DistConfig, ranks []*rankCtx) DistEpochStat {
	var st DistEpochStat
	for _, r := range ranks {
		lat, bwd, mlp, rat, exposed := rankPhaseSeconds(cfg, r)
		if exposed > st.ExposedNet {
			st.ExposedNet = exposed
		}
		if lat > st.LAT {
			st.LAT = lat
		}
		if bwd > st.BwdAgg {
			st.BwdAgg = bwd
		}
		if mlp > st.MLP {
			st.MLP = mlp
		}
		if rat > st.RAT {
			st.RAT = rat
		}
	}
	st.ParamSync = paramSyncSeconds(cfg, ranks[0].model.NumParams())
	st.Epoch = st.LAT + st.BwdAgg + st.MLP + st.RAT + st.ParamSync
	return st
}
