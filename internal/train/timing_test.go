package train

import (
	"testing"

	"distgnn/internal/comm"
	"distgnn/internal/partition"
)

// buildRanksForTiming constructs rank contexts without training.
func buildRanksForTiming(t *testing.T, k int, algo Algorithm) (*DistConfig, []*rankCtx) {
	t.Helper()
	ds := testDataset(t)
	cfg := DistConfig{
		Model: smallModel(), NumPartitions: k, Algo: algo,
		Epochs: 1, LR: 0.1, Seed: 3,
		Compute: comm.ComputeModel{AggElemsPerSec: 1e9, MACsPerSec: 1e10},
		Net:     comm.DefaultCostModel(k),
	}
	if algo == AlgoCDR || algo == AlgoCDRS {
		cfg.Delay = 2
	}
	mc := cfg.Model
	mc.InDim = ds.Features.Cols
	mc.OutDim = ds.NumClasses
	cfg.Model = mc
	cfg.Partitioner = partition.Libra{Seed: 3}
	pt, err := partition.Partition(ds.G, cfg.Partitioner, k, 3)
	if err != nil {
		t.Fatal(err)
	}
	bins := 1
	if algo == AlgoCDR || algo == AlgoCDRS {
		bins = cfg.Delay
	}
	ranks, err := setupRanks(ds, &cfg, pt, buildXPlans(pt, bins), comm.NewWorld(k), comm.AllRanks)
	if err != nil {
		t.Fatal(err)
	}
	return &cfg, ranks
}

func TestAggWorkCountsEdgesTimesWidths(t *testing.T) {
	cfg, ranks := buildRanksForTiming(t, 2, Algo0C)
	for _, r := range ranks {
		want := int64(r.part.G.NumEdges) * int64(cfg.Model.InDim+cfg.Model.Hidden)
		if got := r.aggWorkElems(); got != want {
			t.Fatalf("rank %d agg work %d, want %d", r.id, got, want)
		}
	}
}

func TestMLPWorkCountsMACs(t *testing.T) {
	cfg, ranks := buildRanksForTiming(t, 2, Algo0C)
	for _, r := range ranks {
		n := int64(r.part.NumLocal())
		fwd := n*int64(cfg.Model.InDim)*int64(cfg.Model.Hidden) +
			n*int64(cfg.Model.Hidden)*int64(cfg.Model.OutDim)
		if got := r.mlpWorkMACs(); got != 3*fwd {
			t.Fatalf("rank %d MLP work %d, want %d", r.id, got, 3*fwd)
		}
	}
}

func TestTimeEpochUsesSlowestRank(t *testing.T) {
	cfg, ranks := buildRanksForTiming(t, 4, Algo0C)
	st := timeEpoch(cfg, ranks)
	var maxLat float64
	for _, r := range ranks {
		lat := cfg.Compute.AggSeconds(r.aggWorkElems())
		if lat > maxLat {
			maxLat = lat
		}
	}
	if st.LAT != maxLat {
		t.Fatalf("LAT %v != slowest rank %v", st.LAT, maxLat)
	}
	if st.RAT != 0 {
		t.Fatalf("0c RAT must be 0, got %v", st.RAT)
	}
	if st.ParamSync <= 0 {
		t.Fatal("multi-rank param sync must cost time")
	}
	if st.Epoch < st.LAT+st.BwdAgg+st.MLP {
		t.Fatal("epoch must include all compute phases")
	}
}

func TestTimeEpochSingleRankNoParamSync(t *testing.T) {
	cfg, ranks := buildRanksForTiming(t, 1, Algo0C)
	st := timeEpoch(cfg, ranks)
	if st.ParamSync != 0 {
		t.Fatalf("k=1 param sync must be free, got %v", st.ParamSync)
	}
}

func TestBlockingNetworkExposedInRAT(t *testing.T) {
	// The blocking algorithms (cd-0, cd-r) expose their full network term;
	// cd-rs pays only what its Waits recorded as un-hidden.
	for _, algo := range []Algorithm{AlgoCD0, AlgoCDR} {
		cfg, ranks := buildRanksForTiming(t, 2, algo)
		// Simulate counters as if an exchange happened.
		ranks[0].gatherBytes = 1 << 20
		ranks[0].netBytes = 1 << 20
		ranks[0].netMsgs = 4
		st := timeEpoch(cfg, ranks)
		want := float64(1<<20)/cfg.Net.MemBandwidth +
			4*cfg.Net.NetLatency + float64(1<<20)/cfg.Net.NetBandwidth
		if st.RAT != want {
			t.Fatalf("%s RAT %v must expose the full network term (%v)", algo, st.RAT, want)
		}
	}

	// Same counters under cd-rs with everything hidden: only gather shows.
	cfgS, ranksS := buildRanksForTiming(t, 2, AlgoCDRS)
	ranksS[0].gatherBytes = 1 << 20
	ranksS[0].netBytes = 1 << 20
	ranksS[0].netMsgs = 4
	stS := timeEpoch(cfgS, ranksS)
	wantGather := float64(1<<20) / cfgS.Net.MemBandwidth
	if stS.RAT != wantGather {
		t.Fatalf("fully hidden cd-rs RAT %v must be pre/post only (%v)", stS.RAT, wantGather)
	}
	if stS.ExposedNet != 0 {
		t.Fatalf("fully hidden cd-rs ExposedNet must be 0, got %v", stS.ExposedNet)
	}

	// With an un-hidden remainder recorded, cd-rs RAT carries exactly it.
	ranksS[0].exposedNet = 1e-3
	stS = timeEpoch(cfgS, ranksS)
	if stS.RAT != wantGather+1e-3 {
		t.Fatalf("cd-rs RAT %v must be gather + exposed remainder (%v)", stS.RAT, wantGather+1e-3)
	}
	if stS.ExposedNet != 1e-3 {
		t.Fatalf("cd-rs ExposedNet %v must surface the remainder", stS.ExposedNet)
	}
}
