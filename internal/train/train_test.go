package train

import (
	"math"
	"testing"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/model"
	"distgnn/internal/partition"
)

// testDataset is a small planted-community graph that GraphSAGE learns
// quickly, shared across trainer tests.
func testDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	d, err := datasets.Generate(datasets.Spec{
		Name: "train-test", NumVertices: 600, AvgDegree: 12,
		FeatDim: 16, NumClasses: 4, Communities: 4, IntraFrac: 0.85,
		Undirected: true, FeatureNoise: 0.8, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallModel() model.Config {
	return model.Config{Hidden: 16, NumLayers: 2, Seed: 5}
}

func TestSingleSocketLearns(t *testing.T) {
	ds := testDataset(t)
	res, err := SingleSocket(ds, SingleConfig{
		Model: smallModel(), Epochs: 40, LR: 0.05, UseAdam: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
	if last >= first*0.7 {
		t.Fatalf("loss barely moved: %v → %v", first, last)
	}
	if res.TestAcc < 0.7 {
		t.Fatalf("test accuracy %v < 0.7", res.TestAcc)
	}
	if res.TrainAcc < res.TestAcc-0.3 {
		t.Fatalf("implausible accuracies train=%v test=%v", res.TrainAcc, res.TestAcc)
	}
	for _, e := range res.Epochs {
		if e.Total <= 0 || e.Agg <= 0 || e.Agg > e.Total {
			t.Fatalf("bad epoch timing: %+v", e)
		}
	}
}

func TestSingleSocketAvgEpochWindow(t *testing.T) {
	ds := testDataset(t)
	res, err := SingleSocket(ds, SingleConfig{Model: smallModel(), Epochs: 5, LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tot, agg := res.AvgEpoch(1, 5)
	if tot <= 0 || agg <= 0 {
		t.Fatal("window averages must be positive")
	}
	if tot2, _ := res.AvgEpoch(4, 99); tot2 <= 0 {
		t.Fatal("clamped window must still average")
	}
	if tot3, _ := res.AvgEpoch(7, 9); tot3 != 0 {
		t.Fatal("empty window must be zero")
	}
}

func TestSingleSocketRejectsBadConfig(t *testing.T) {
	ds := testDataset(t)
	if _, err := SingleSocket(ds, SingleConfig{Model: smallModel(), Epochs: 0}); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}

func TestDistributedRejectsBadConfig(t *testing.T) {
	ds := testDataset(t)
	cases := []DistConfig{
		{Model: smallModel(), NumPartitions: 0, Algo: Algo0C, Epochs: 1, LR: 0.1},
		{Model: smallModel(), NumPartitions: 2, Algo: Algo0C, Epochs: 0, LR: 0.1},
		{Model: smallModel(), NumPartitions: 2, Algo: "bogus", Epochs: 1, LR: 0.1},
		{Model: smallModel(), NumPartitions: 2, Algo: AlgoCDR, Delay: 0, Epochs: 1, LR: 0.1},
		{Model: smallModel(), NumPartitions: 2, Algo: AlgoCDRS, Delay: 0, Epochs: 1, LR: 0.1},
	}
	for i, cfg := range cases {
		if _, err := Distributed(ds, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

// cd-0 gives every vertex its complete neighborhood, so with identical
// initial weights the FIRST epoch's loss must match single-socket exactly
// (both compute the same global forward pass before any trajectories
// diverge).
func TestCD0FirstEpochLossMatchesSingleSocket(t *testing.T) {
	ds := testDataset(t)
	single, err := SingleSocket(ds, SingleConfig{Model: smallModel(), Epochs: 1, LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		dist, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: k, Algo: AlgoCD0,
			Epochs: 1, LR: 0.1, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(dist.Epochs[0].Loss - single.Epochs[0].Loss); d > 1e-3 {
			t.Fatalf("k=%d: cd-0 first-epoch loss %v vs single %v (diff %v)",
				k, dist.Epochs[0].Loss, single.Epochs[0].Loss, d)
		}
	}
}

func TestDistributedSinglePartitionMatchesSingleSocket(t *testing.T) {
	ds := testDataset(t)
	single, err := SingleSocket(ds, SingleConfig{Model: smallModel(), Epochs: 5, LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Distributed(ds, DistConfig{
		Model: smallModel(), NumPartitions: 1, Algo: AlgoCD0, Epochs: 5, LR: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := range dist.Epochs {
		if d := math.Abs(dist.Epochs[e].Loss - single.Epochs[e].Loss); d > 1e-3 {
			t.Fatalf("epoch %d: k=1 loss %v vs single %v", e, dist.Epochs[e].Loss, single.Epochs[e].Loss)
		}
	}
}

func TestAllAlgorithmsLearn(t *testing.T) {
	ds := testDataset(t)
	for _, tc := range []struct {
		algo  Algorithm
		delay int
	}{{Algo0C, 0}, {AlgoCD0, 0}, {AlgoCDR, 3}, {AlgoCDRS, 3}} {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: tc.algo, Delay: tc.delay,
			Epochs: 40, LR: 0.05, UseAdam: true, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.algo, err)
		}
		first, last := res.Epochs[0].Loss, res.Epochs[len(res.Epochs)-1].Loss
		if last >= first*0.8 {
			t.Fatalf("%s: loss %v → %v did not improve", tc.algo, first, last)
		}
		if res.TestAcc < 0.6 {
			t.Fatalf("%s: test accuracy %v < 0.6", tc.algo, res.TestAcc)
		}
	}
}

func TestCDRAccuracyNearCD0(t *testing.T) {
	// Table 5's claim: delayed aggregation stays within ~1% of cd-0.
	// On this small task we allow a few points of slack.
	ds := testDataset(t)
	run := func(algo Algorithm, delay int) float64 {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: algo, Delay: delay,
			Epochs: 50, LR: 0.05, UseAdam: true, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TestAcc
	}
	cd0 := run(AlgoCD0, 0)
	cdr := run(AlgoCDR, 5)
	if cdr < cd0-0.08 {
		t.Fatalf("cd-5 accuracy %v too far below cd-0 %v", cdr, cd0)
	}
}

func TestTimingShape(t *testing.T) {
	// §5.3: 0c is fastest (no communication), cd-0 slowest (synchronous
	// exchange); cd-r hides the network term so it lands between them.
	ds := testDataset(t)
	epochTime := func(algo Algorithm, delay int) (epoch, rat float64) {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 4, Algo: algo, Delay: delay,
			Epochs: 8, LR: 0.1, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		lo := 0
		if algo == AlgoCDR {
			lo = 2 * delay // steady state
		}
		_, ratAvg := res.AvgLATRAT(lo, 8)
		return res.AvgEpochSeconds(lo, 8), ratAvg
	}
	e0c, r0c := epochTime(Algo0C, 0)
	ecd0, rcd0 := epochTime(AlgoCD0, 0)
	ecdr, rcdr := epochTime(AlgoCDR, 2)
	if r0c != 0 {
		t.Fatalf("0c RAT must be zero, got %v", r0c)
	}
	if rcd0 <= rcdr {
		t.Fatalf("cd-0 RAT %v must exceed cd-r RAT %v", rcd0, rcdr)
	}
	if rcdr <= 0 {
		t.Fatalf("cd-r RAT must be positive (pre/post processing), got %v", rcdr)
	}
	if !(e0c < ecdr && ecdr < ecd0) {
		t.Fatalf("epoch times must order 0c < cd-r < cd-0: %v, %v, %v", e0c, ecdr, ecd0)
	}
}

func TestDistributedDeterministic(t *testing.T) {
	ds := testDataset(t)
	run := func() *DistResult {
		res, err := Distributed(ds, DistConfig{
			Model: smallModel(), NumPartitions: 3, Algo: AlgoCDR, Delay: 2,
			Epochs: 6, LR: 0.1, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for e := range a.Epochs {
		if a.Epochs[e].Loss != b.Epochs[e].Loss {
			t.Fatalf("epoch %d losses differ: %v vs %v", e, a.Epochs[e].Loss, b.Epochs[e].Loss)
		}
	}
	if a.TestAcc != b.TestAcc {
		t.Fatalf("test accuracies differ: %v vs %v", a.TestAcc, b.TestAcc)
	}
}

func TestDistResultMetadata(t *testing.T) {
	ds := testDataset(t)
	res, err := Distributed(ds, DistConfig{
		Model: smallModel(), NumPartitions: 4, Algo: Algo0C, Epochs: 2, LR: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replication < 1 || res.Replication > 4 {
		t.Fatalf("replication %v out of range", res.Replication)
	}
	if len(res.SplitFrac) != 4 {
		t.Fatalf("split fractions %v", res.SplitFrac)
	}
	if res.EdgeBalance < 1 {
		t.Fatalf("edge balance %v", res.EdgeBalance)
	}
	if res.NumParams <= 0 {
		t.Fatal("NumParams missing")
	}
}

// White-box: owned vertex masks must partition the global train/test sets.
func TestOwnershipPartitionsVertices(t *testing.T) {
	ds := testDataset(t)
	cfg := DistConfig{Model: smallModel(), NumPartitions: 4, Algo: AlgoCD0,
		Epochs: 1, LR: 0.1, Seed: 3}
	cfg.Partitioner = partition.Libra{Seed: 3}
	mc := cfg.Model
	mc.InDim = ds.Features.Cols
	mc.OutDim = ds.NumClasses
	cfg.Model = mc
	cfg.Compute.AggElemsPerSec = 1
	cfg.Compute.MACsPerSec = 1
	pt, err := partition.Partition(ds.G, cfg.Partitioner, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := setupRanks(ds, &cfg, pt, buildXPlans(pt, 1), comm.NewWorld(4), comm.AllRanks)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	ownedTotal := 0
	for _, r := range ranks {
		ownedTotal += len(r.ownedTrain)
		for _, local := range r.ownedTrain {
			seen[r.part.GlobalID[local]]++
		}
	}
	if ownedTotal != len(ds.TrainIdx) {
		t.Fatalf("owned train total %d != %d", ownedTotal, len(ds.TrainIdx))
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("train vertex %d owned %d times", g, c)
		}
	}
}

func TestCDRDelayBinsPartitionSplits(t *testing.T) {
	ds := testDataset(t)
	pt, err := partition.Partition(ds.G, partition.Libra{Seed: 1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	bins := 5
	plans := buildXPlans(pt, bins)
	// Each (split vertex, leaf clone) pair must appear in exactly one bin.
	total := 0
	for _, p := range plans {
		for b := 0; b < bins; b++ {
			for _, rows := range p.leafSend[b] {
				total += len(rows)
			}
		}
	}
	want := 0
	for _, sv := range pt.Splits {
		want += len(sv.Clones) - 1
	}
	if total != want {
		t.Fatalf("leaf-send rows across bins %d != expected %d", total, want)
	}
}
