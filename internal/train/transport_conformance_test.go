package train

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"distgnn/internal/comm"
	"distgnn/internal/datasets"
	"distgnn/internal/quant"
)

// transport_conformance_test.go extends PR 2's conformance harness across
// comm substrates: the same trainer config driven as one in-process world
// and as a fleet of single-rank TCP endpoints over loopback — each
// endpoint its own distState with only its rank materialized, exactly the
// state a separate OS process would build — must produce bit-identical
// parameters and losses at every epoch. In-process conformance
// (conformance_test.go) pins cd-rs ≡ cd-r; this file pins {cd-r, cd-rs} ×
// {in-process, TCP}.

// tcpFleetRun trains a loopback TCP fleet and returns rank 0's per-epoch
// losses and parameter snapshots plus the final test accuracy.
func tcpFleetRun(t *testing.T, ds *datasets.Dataset, cfg DistConfig) (losses []float64, params [][]float32, testAcc float64) {
	t.Helper()
	eps, err := comm.NewLoopbackTCP(cfg.NumPartitions, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	losses = make([]float64, cfg.Epochs)
	params = make([][]float32, cfg.Epochs)
	errs := make([]error, cfg.NumPartitions)
	var wg sync.WaitGroup
	for r := 0; r < cfg.NumPartitions; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d panicked: %v", r, p)
				}
			}()
			rcfg := cfg
			rcfg.Transport = eps[r]
			s, err := newDistState(ds, rcfg)
			if err != nil {
				errs[r] = err
				return
			}
			for e := 0; e < cfg.Epochs; e++ {
				st := s.runEpoch(e)
				if r == 0 {
					losses[e] = st.Loss
					params[e] = snapshotParams(t, s, 0)
				}
			}
			_, acc := s.evaluate()
			if r == 0 {
				testAcc = acc
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}
	return losses, params, testAcc
}

// TestTransportConformance: cd-r and cd-rs at 2 and 4 ranks, fp32 and the
// packed 16-bit wire, train bit-identical parameters over loopback TCP and
// the in-process mailbox. The transport is a substrate change, never an
// arithmetic one.
func TestTransportConformance(t *testing.T) {
	ds := testDataset(t)
	const epochs, delay = 5, 2
	for _, tc := range []struct {
		sockets int
		algo    Algorithm
		prec    quant.Precision
	}{
		{2, AlgoCDR, quant.FP32},
		{4, AlgoCDR, quant.FP32},
		{2, AlgoCDRS, quant.FP32},
		{4, AlgoCDRS, quant.FP32},
		{2, AlgoCDR, quant.BF16},
		{4, AlgoCDR, quant.BF16},
		{2, AlgoCDRS, quant.BF16},
		{4, AlgoCDRS, quant.FP16},
	} {
		cfg := DistConfig{
			Model: smallModel(), NumPartitions: tc.sockets, Algo: tc.algo,
			Delay: delay, Epochs: epochs, LR: 0.05, UseAdam: true, Seed: 9,
			CommPrecision: tc.prec,
		}

		ref, err := newDistState(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refLoss := make([]float64, epochs)
		refParams := make([][]float32, epochs)
		for e := 0; e < epochs; e++ {
			st := ref.runEpoch(e)
			refLoss[e] = st.Loss
			refParams[e] = snapshotParams(t, ref, 0)
		}
		_, refAcc := ref.evaluate()

		tcpLoss, tcpParams, tcpAcc := tcpFleetRun(t, ds, cfg)

		for e := 0; e < epochs; e++ {
			if refLoss[e] != tcpLoss[e] {
				t.Fatalf("k=%d %s %v epoch %d: loss %v (in-process) vs %v (tcp)",
					tc.sockets, tc.algo, tc.prec, e, refLoss[e], tcpLoss[e])
			}
			for i := range refParams[e] {
				if refParams[e][i] != tcpParams[e][i] {
					t.Fatalf("k=%d %s %v epoch %d: param[%d] %v (in-process) vs %v (tcp)",
						tc.sockets, tc.algo, tc.prec, e, i, refParams[e][i], tcpParams[e][i])
				}
			}
		}
		if refAcc != tcpAcc {
			t.Fatalf("k=%d %s %v: test acc %v (in-process) vs %v (tcp)",
				tc.sockets, tc.algo, tc.prec, refAcc, tcpAcc)
		}
	}
}

// TestDistributedOverTCPEndpoint: the packaged Distributed loop accepts a
// transport endpoint and trains the rank — the production entry point
// cmd/distgnn-train uses in -transport tcp mode — and its results match
// the fully in-process loop.
func TestDistributedOverTCPEndpoint(t *testing.T) {
	ds := testDataset(t)
	base := DistConfig{
		Model: smallModel(), NumPartitions: 2, Algo: AlgoCDRS, Delay: 2,
		Epochs: 4, LR: 0.05, UseAdam: true, Seed: 9,
	}
	ref, err := Distributed(ds, base)
	if err != nil {
		t.Fatal(err)
	}

	eps, err := comm.NewLoopbackTCP(2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	results := make([]*DistResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Transport = eps[r]
			results[r], errs[r] = Distributed(ds, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, res := range results {
		for e := range ref.Epochs {
			if res.Epochs[e].Loss != ref.Epochs[e].Loss {
				t.Fatalf("rank %d epoch %d: loss %v vs in-process %v",
					r, e, res.Epochs[e].Loss, ref.Epochs[e].Loss)
			}
		}
		if res.TestAcc != ref.TestAcc || res.TrainAcc != ref.TrainAcc {
			t.Fatalf("rank %d: acc %v/%v vs in-process %v/%v",
				r, res.TrainAcc, res.TestAcc, ref.TrainAcc, ref.TestAcc)
		}
		if res.NumParams != ref.NumParams {
			t.Fatalf("rank %d: NumParams %d vs %d", r, res.NumParams, ref.NumParams)
		}
	}
}
