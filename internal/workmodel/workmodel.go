// Package workmodel provides the analytic accounting the paper uses in its
// memory and work analyses: the GraphSAGE memory model of §6.3/Table 6 and
// the per-hop aggregation work model of Tables 7–8 (ops = vertices × degree
// × feature width).
package workmodel

import "fmt"

// HopWork describes the aggregation work of one hop: the number of
// destination vertices, the (average or sampled) degree feeding each, and
// the feature width at that hop.
type HopWork struct {
	Vertices int
	Degree   float64
	Feat     int
}

// Ops returns the hop's aggregation work in element operations —
// the paper's "#vertices × avg. deg. × #feats" product.
func (h HopWork) Ops() float64 {
	return float64(h.Vertices) * h.Degree * float64(h.Feat)
}

// TotalOps sums hop work — one mini-batch (Table 7) or one full-batch
// partition epoch (Table 8).
func TotalOps(hops []HopWork) float64 {
	var total float64
	for _, h := range hops {
		total += h.Ops()
	}
	return total
}

// BOps converts element operations to the paper's "B Ops" unit.
func BOps(ops float64) float64 { return ops / 1e9 }

// FullBatchHops builds Table 8's rows: every hop touches all partition
// vertices at the graph's average degree; feature widths per hop are
// (input, hidden, hidden, ...) from the outermost hop inward.
func FullBatchHops(partitionVertices int, avgDegree float64, feats []int) []HopWork {
	hops := make([]HopWork, len(feats))
	for i, f := range feats {
		hops[i] = HopWork{Vertices: partitionVertices, Degree: avgDegree, Feat: f}
	}
	return hops
}

// MemoryParams feeds the GraphSAGE memory model of §6.3: a 3-layer model
// with hidden sizes H1, H2 over a partition of N vertices with F input
// features and L label classes.
type MemoryParams struct {
	N             int // partition vertices (split + non-split)
	F, H1, H2, L  int
	Edges         int // partition edges (CSR structure memory)
	SplitVertices int // vertices needing communication buffers
	Delay         int // r of cd-r (in-flight buffering multiplier)
}

// Algorithm names accepted by Memory.
const (
	Algo0C  = "0c"
	AlgoCD0 = "cd-0"
	AlgoCDR = "cd-r"
)

// Memory returns the per-partition peak memory estimate in bytes for one
// of the three distributed algorithms, following the paper's inventory:
// (1) weight matrices, (2) input features, (3) aggregation outputs per
// layer, (4) MLP outputs per layer (all retained for backprop), plus graph
// structure and algorithm-specific communication buffers.
func Memory(p MemoryParams, algo string) (int64, error) {
	const bytesPerFloat = 4
	n := int64(p.N)
	f, h1, h2, l := int64(p.F), int64(p.H1), int64(p.H2), int64(p.L)

	weights := f*h1 + h1*h2 + h2*l
	input := n * f
	aggOut := n * (f + h1 + h2)
	mlpOut := n * (h1 + h2 + l)
	activations := (weights + input + aggOut + mlpOut) * bytesPerFloat
	// Gradients of weights and of the retained activations.
	gradients := (weights + aggOut + mlpOut) * bytesPerFloat
	structure := int64(p.Edges) * 8 // indices + edge IDs, 4B each

	base := activations + gradients + structure

	commWidth := (f + h1 + h2) * bytesPerFloat
	split := int64(p.SplitVertices)
	switch algo {
	case Algo0C:
		return base, nil
	case AlgoCD0:
		// Send + receive staging for one synchronous exchange.
		return base + 2*split*commWidth, nil
	case AlgoCDR:
		// Capture + stale-remote + stale-total buffers sized to the full
		// partition, plus up to Delay in-flight bundles of the bin volume.
		delay := int64(p.Delay)
		if delay < 1 {
			delay = 1
		}
		buffers := 3 * n * commWidth
		inflight := 2 * split * commWidth // partials out + totals back
		return base + buffers + inflight, nil
	default:
		return 0, fmt.Errorf("workmodel: unknown algorithm %q", algo)
	}
}

// GiB converts bytes to gibibytes for Table 6 style reporting.
func GiB(bytes int64) float64 { return float64(bytes) / (1 << 30) }
