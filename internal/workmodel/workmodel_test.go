package workmodel

import (
	"math"
	"testing"
)

func TestHopWorkOps(t *testing.T) {
	h := HopWork{Vertices: 2000, Degree: 15, Feat: 256}
	if got := h.Ops(); got != 2000*15*256 {
		t.Fatalf("Ops = %v", got)
	}
}

// Table 7 of the paper: the per-mini-batch work of Dist-DGL on
// OGBN-Products sums to ≈0.202 B ops with batch 2000 and fan-outs 5/10/15.
func TestTable7MiniBatchWork(t *testing.T) {
	hops := []HopWork{
		{Vertices: 233692, Degree: 5, Feat: 100}, // hop-2
		{Vertices: 30214, Degree: 10, Feat: 256}, // hop-1
		{Vertices: 2000, Degree: 15, Feat: 256},  // hop-0
	}
	got := BOps(TotalOps(hops))
	if math.Abs(got-0.202) > 0.005 {
		t.Fatalf("mini-batch work %.3f B ops, paper reports 0.202", got)
	}
}

// Table 8 of the paper: full-batch work on OGBN-Products (single socket)
// sums to ≈77.19 B ops.
func TestTable8FullBatchWork(t *testing.T) {
	hops := FullBatchHops(2449029, 51.5, []int{100, 256, 256})
	got := BOps(TotalOps(hops))
	if math.Abs(got-77.19) > 0.3 {
		t.Fatalf("full-batch work %.2f B ops, paper reports 77.19", got)
	}
	// And the 16-socket partition row: ≈18.80 B ops.
	hops16 := FullBatchHops(596499, 51.5, []int{100, 256, 256})
	got16 := BOps(TotalOps(hops16))
	if math.Abs(got16-18.80) > 0.1 {
		t.Fatalf("16-socket work %.2f B ops, paper reports 18.80", got16)
	}
}

func TestMemoryOrdering(t *testing.T) {
	// Table 6's shape: 0c < cd-0 < cd-5 at every partition count.
	p := MemoryParams{
		N: 5_000_000, F: 128, H1: 256, H2: 256, L: 172,
		Edges: 50_000_000, SplitVertices: 4_500_000, Delay: 5,
	}
	m0c, err := Memory(p, Algo0C)
	if err != nil {
		t.Fatal(err)
	}
	mcd0, err := Memory(p, AlgoCD0)
	if err != nil {
		t.Fatal(err)
	}
	mcdr, err := Memory(p, AlgoCDR)
	if err != nil {
		t.Fatal(err)
	}
	if !(m0c < mcd0 && mcd0 < mcdr) {
		t.Fatalf("memory ordering violated: 0c=%d cd-0=%d cd-r=%d", m0c, mcd0, mcdr)
	}
}

func TestMemoryDecreasesWithPartitionSize(t *testing.T) {
	// Table 6: memory per partition shrinks as partitions multiply.
	mk := func(n int) int64 {
		m, err := Memory(MemoryParams{
			N: n, F: 128, H1: 256, H2: 256, L: 172,
			Edges: n * 14, SplitVertices: int(float64(n) * 0.9), Delay: 5,
		}, AlgoCDR)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if !(mk(1_000_000) > mk(500_000) && mk(500_000) > mk(250_000)) {
		t.Fatal("memory must decrease with partition size")
	}
}

func TestMemoryUnknownAlgo(t *testing.T) {
	if _, err := Memory(MemoryParams{N: 1}, "bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGiB(t *testing.T) {
	if GiB(1<<30) != 1 {
		t.Fatal("GiB conversion wrong")
	}
}

func TestFullBatchHopsShape(t *testing.T) {
	hops := FullBatchHops(100, 7.5, []int{10, 20})
	if len(hops) != 2 {
		t.Fatalf("hops %v", hops)
	}
	for _, h := range hops {
		if h.Vertices != 100 || h.Degree != 7.5 {
			t.Fatalf("hop %+v", h)
		}
	}
}
